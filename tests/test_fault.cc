/**
 * @file
 * End-to-end fault injection and recovery tests: the fault plan format,
 * the injector, the device read-retry ladder and block retirement, unit
 * lifecycle under wear-out, network timeout/retry, replicated failover
 * with read-repair, and full fault-campaign invariants (no data loss,
 * bounded completion, determinism).
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "fault/fault.h"
#include "fault_common.h"
#include "kv/replicated_store.h"
#include "net/network.h"
#include "sdf/sdf_device.h"
#include "sim/simulator.h"

namespace sdf {
namespace {

core::SdfConfig
TinyConfig()
{
    core::SdfConfig c;
    c.flash.geometry = nand::TinyTestGeometry();
    c.flash.timing = nand::FastTestTiming();
    c.link = controller::UnlimitedLinkSpec();
    c.spare_blocks_per_plane = 2;
    c.irq.coalesce = false;
    return c;
}

// ---------------------------------------------------------------------------
// FaultPlan
// ---------------------------------------------------------------------------

TEST(FaultPlan, RandomIsDeterministicPerSeed)
{
    fault::FaultPlanSpec spec;
    spec.fault_count = 64;
    const fault::FaultPlan a = fault::FaultPlan::Random(spec, 7);
    const fault::FaultPlan b = fault::FaultPlan::Random(spec, 7);
    const fault::FaultPlan c = fault::FaultPlan::Random(spec, 8);
    ASSERT_EQ(a.size(), 64u);
    ASSERT_EQ(a.size(), b.size());
    bool differs_from_c = a.size() != c.size();
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a.events()[i].when, b.events()[i].when);
        EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
        EXPECT_EQ(a.events()[i].channel, b.events()[i].channel);
        if (!differs_from_c &&
            (a.events()[i].when != c.events()[i].when ||
             a.events()[i].kind != c.events()[i].kind)) {
            differs_from_c = true;
        }
    }
    EXPECT_TRUE(differs_from_c);
}

TEST(FaultPlan, RespectsMaxDeaths)
{
    fault::FaultPlanSpec spec;
    spec.fault_count = 500;
    spec.weight_death = 100.0;  // Make deaths dominate the draw.
    spec.max_deaths = 3;
    const fault::FaultPlan plan = fault::FaultPlan::Random(spec, 11);
    uint32_t deaths = 0;
    for (const auto &e : plan.events()) {
        if (e.kind == fault::FaultKind::kChannelDeath) ++deaths;
    }
    EXPECT_LE(deaths, 3u);
}

TEST(FaultPlan, ParseToTextRoundTrip)
{
    const std::string text =
        "# comment line\n"
        "1000 stall 0 3 500\n"
        "2000 death 0 7\n"
        "\n"
        "3000 corrupt 1 2 3 4 5   # trailing comment\n"
        "4000 crc 0 5 800 0.25\n"
        "5000 rber 0 2 0 3 50\n";
    fault::FaultPlan plan;
    std::string error;
    ASSERT_TRUE(fault::FaultPlan::Parse(text, &plan, &error)) << error;
    ASSERT_EQ(plan.size(), 5u);
    EXPECT_EQ(plan.events()[0].kind, fault::FaultKind::kChannelStall);
    EXPECT_EQ(plan.events()[0].when, util::UsToNs(1000));
    EXPECT_EQ(plan.events()[0].duration, util::UsToNs(500));
    EXPECT_EQ(plan.events()[1].kind, fault::FaultKind::kChannelDeath);
    EXPECT_EQ(plan.events()[1].channel, 7u);
    EXPECT_EQ(plan.events()[2].device, 1u);
    EXPECT_EQ(plan.events()[2].page, 5u);
    EXPECT_DOUBLE_EQ(plan.events()[3].magnitude, 0.25);
    EXPECT_DOUBLE_EQ(plan.events()[4].magnitude, 50.0);

    fault::FaultPlan again;
    ASSERT_TRUE(fault::FaultPlan::Parse(plan.ToText(), &again, &error))
        << error;
    ASSERT_EQ(again.size(), plan.size());
    for (size_t i = 0; i < plan.size(); ++i) {
        EXPECT_EQ(again.events()[i].when, plan.events()[i].when);
        EXPECT_EQ(again.events()[i].kind, plan.events()[i].kind);
        EXPECT_EQ(again.events()[i].device, plan.events()[i].device);
        EXPECT_EQ(again.events()[i].channel, plan.events()[i].channel);
        EXPECT_EQ(again.events()[i].block, plan.events()[i].block);
    }
}

TEST(FaultPlan, ParseRejectsMalformedLines)
{
    fault::FaultPlan plan;
    std::string error;
    EXPECT_FALSE(fault::FaultPlan::Parse("5 explode 0 0\n", &plan, &error));
    EXPECT_NE(error.find("line 1"), std::string::npos);
    EXPECT_FALSE(fault::FaultPlan::Parse("5 stall 0\n", &plan, &error));
    EXPECT_FALSE(fault::FaultPlan::Parse("5 stall 0 0 -3\n", &plan, &error));
    EXPECT_FALSE(
        fault::FaultPlan::Parse("5 crc 0 0 100 1.5\n", &plan, &error));
    EXPECT_FALSE(fault::FaultPlan::Parse("ok\n5 death 0 0\n", &plan, &error));
}

// ---------------------------------------------------------------------------
// FaultInjector
// ---------------------------------------------------------------------------

TEST(FaultInjector, AppliesEventsAndSkipsOutOfRange)
{
    sim::Simulator sim;
    core::SdfDevice dev(sim, TinyConfig());
    std::vector<fault::FaultEvent> events;
    fault::FaultEvent death;
    death.kind = fault::FaultKind::kChannelDeath;
    death.when = util::UsToNs(10);
    death.channel = 1;
    events.push_back(death);
    fault::FaultEvent bogus = death;  // Channel beyond the tiny geometry.
    bogus.channel = 99;
    events.push_back(bogus);
    fault::FaultEvent stall;
    stall.kind = fault::FaultKind::kChannelStall;
    stall.when = util::UsToNs(20);
    stall.channel = 0;
    stall.duration = util::UsToNs(100);
    events.push_back(stall);

    fault::FaultInjector injector(sim, {&dev},
                                  fault::FaultPlan(std::move(events)));
    sim.Run();
    EXPECT_TRUE(dev.ChannelDead(1));
    EXPECT_FALSE(dev.ChannelDead(0));
    EXPECT_EQ(injector.stats().deaths, 1u);
    EXPECT_EQ(injector.stats().stalls, 1u);
    EXPECT_EQ(injector.stats().skipped, 1u);
    EXPECT_EQ(injector.stats().total(), 2u);
}

TEST(FaultInjector, DeadChannelFailsOperationsTyped)
{
    sim::Simulator sim;
    core::SdfDevice dev(sim, TinyConfig());
    dev.EraseUnit(0, 0, nullptr);
    sim.Run();
    dev.flash().channel(0).InjectDeath();

    core::IoStatus write_st;
    dev.WriteUnit(0, 0, [&](core::IoStatus st) { write_st = st; });
    sim.Run();
    EXPECT_FALSE(write_st.ok());
    EXPECT_EQ(write_st.error, core::IoError::kChannelDead);

    core::IoStatus read_st;
    dev.Read(0, 0, 0, dev.read_unit_bytes(),
             [&](core::IoStatus st) { read_st = st; });
    sim.Run();
    EXPECT_EQ(read_st.error, core::IoError::kChannelDead);
}

// ---------------------------------------------------------------------------
// Read-retry ladder
// ---------------------------------------------------------------------------

/** Erase+write every unit, then read every page once; returns the device. */
std::unique_ptr<core::SdfDevice>
RunElevatedRberReads(sim::Simulator &sim, uint32_t retry_levels,
                     uint64_t seed)
{
    core::SdfConfig cfg = TinyConfig();
    // ~29 expected raw bit errors per 4 KiB page against a 40-bit BCH
    // budget: a few percent of plain reads fail, but each extra ladder
    // level adds 10 correctable bits, putting re-reads deep in the safe
    // tail of the Poisson distribution.
    cfg.flash.errors.enabled = true;
    cfg.flash.errors.base_rber = 9e-4;
    cfg.flash.seed = seed;
    cfg.read_retry_levels = retry_levels;
    auto dev = std::make_unique<core::SdfDevice>(sim, cfg);
    for (uint32_t c = 0; c < dev->channel_count(); ++c) {
        for (uint32_t u = 0; u < dev->units_per_channel(); ++u) {
            dev->EraseUnit(c, u, nullptr);
            sim.Run();
            dev->WriteUnit(c, u, nullptr);
            sim.Run();
        }
    }
    for (uint32_t c = 0; c < dev->channel_count(); ++c) {
        for (uint32_t u = 0; u < dev->units_per_channel(); ++u) {
            dev->Read(c, u, 0, dev->unit_bytes(), nullptr);
            sim.Run();
        }
    }
    return dev;
}

TEST(ReadRetryLadder, RecoversAtLeastTenfold)
{
    sim::Simulator sim_off;
    const auto without = RunElevatedRberReads(sim_off, 0, 123);
    sim::Simulator sim_on;
    const auto with = RunElevatedRberReads(sim_on, 4, 123);

    const uint64_t failures_without = without->stats().read_failures;
    const uint64_t failures_with = with->stats().read_failures;
    EXPECT_EQ(without->stats().read_retries, 0u);
    EXPECT_GT(with->stats().read_retries, 0u);
    EXPECT_GT(with->stats().retry_recoveries, 0u);
    ASSERT_GT(failures_without, 0u);
    // The acceptance bar: the ladder cuts terminal read failures by >= 10x.
    EXPECT_GE(failures_without,
              10 * std::max<uint64_t>(failures_with, 1));
    // Recovered pages have recorded recovery latencies.
    EXPECT_EQ(with->recovery_latencies().count(),
              with->stats().retry_recoveries);
}

TEST(ReadRetryLadder, DeterministicStatsForEqualSeeds)
{
    sim::Simulator sim_a;
    const auto a = RunElevatedRberReads(sim_a, 4, 99);
    sim::Simulator sim_b;
    const auto b = RunElevatedRberReads(sim_b, 4, 99);
    EXPECT_EQ(a->stats().page_reads, b->stats().page_reads);
    EXPECT_EQ(a->stats().read_retries, b->stats().read_retries);
    EXPECT_EQ(a->stats().retry_recoveries, b->stats().retry_recoveries);
    EXPECT_EQ(a->stats().read_failures, b->stats().read_failures);
    EXPECT_EQ(a->stats().blocks_retired, b->stats().blocks_retired);
    EXPECT_EQ(a->stats().units_lost, b->stats().units_lost);
    EXPECT_EQ(sim_a.Now(), sim_b.Now());
}

TEST(ReadRetryLadder, CorruptionRetiresBlockAndSurfacesTypedError)
{
    sim::Simulator sim;
    core::SdfDevice dev(sim, TinyConfig());
    dev.EraseUnit(0, 0, nullptr);
    sim.Run();
    dev.WriteUnit(0, 0, nullptr);
    sim.Run();

    // Corrupt page 0 of every plane-0 block: whichever block unit 0
    // mapped, its first page is now uncorrectable at every retry level.
    const nand::Geometry &geo = dev.flash().geometry();
    for (uint32_t b = 0; b < geo.blocks_per_plane; ++b) {
        dev.flash().channel(0).CorruptPage(nand::PageAddr{0, b, 0});
    }
    const uint32_t spares_before = dev.SparesLeft(0, 0);

    core::IoStatus st;
    dev.Read(0, 0, 0, dev.unit_bytes(), [&](core::IoStatus s) { st = s; });
    sim.Run();
    EXPECT_FALSE(st.ok());
    EXPECT_EQ(st.error, core::IoError::kReadUncorrectable);
    EXPECT_GE(dev.stats().read_retirements, 1u);
    EXPECT_GE(dev.stats().blocks_retired, 1u);
    EXPECT_GE(dev.GrownBadCount(0, 0), 1u);
    EXPECT_EQ(dev.SparesLeft(0, 0), spares_before - dev.GrownBadCount(0, 0));
    // The unit was remapped, not killed: spares absorbed the loss.
    EXPECT_EQ(dev.unit_state(0, 0), core::UnitState::kWritten);
}

// ---------------------------------------------------------------------------
// Unit lifecycle under wear-out
// ---------------------------------------------------------------------------

TEST(UnitLifecycle, WearOutWalksUnwrittenErasedWrittenDead)
{
    sim::Simulator sim;
    core::SdfConfig cfg = TinyConfig();
    cfg.flash.errors.enabled = true;
    cfg.flash.errors.endurance_cycles = 2;
    cfg.flash.errors.wearout_fail_scale = 1.0;
    core::SdfDevice dev(sim, cfg);

    EXPECT_EQ(dev.unit_state(0, 0), core::UnitState::kUnwritten);
    dev.EraseUnit(0, 0, nullptr);
    sim.Run();
    EXPECT_EQ(dev.unit_state(0, 0), core::UnitState::kErased);
    dev.WriteUnit(0, 0, nullptr);
    sim.Run();
    EXPECT_EQ(dev.unit_state(0, 0), core::UnitState::kWritten);

    // Hammer erase/write cycles until wear-out exhausts the plane's
    // spares and the unit dies.
    for (int round = 0; round < 500; ++round) {
        bool dead = false;
        for (uint32_t u = 0; u < dev.units_per_channel(); ++u) {
            dev.EraseUnit(0, u, nullptr);
            sim.Run();
            if (dev.unit_state(0, u) == core::UnitState::kDead) {
                dead = true;
                break;
            }
            dev.WriteUnit(0, u, nullptr);
            sim.Run();
        }
        if (dead) break;
    }
    uint32_t dead_units = 0;
    for (uint32_t u = 0; u < dev.units_per_channel(); ++u) {
        if (dev.unit_state(0, u) == core::UnitState::kDead) ++dead_units;
    }
    ASSERT_GE(dead_units, 1u);
    EXPECT_EQ(dev.stats().units_lost, dead_units);
    EXPECT_GT(dev.stats().blocks_retired, 0u);

    // A dead unit stays dead: erase completes with kUnitDead.
    uint32_t dead_u = 0;
    while (dev.unit_state(0, dead_u) != core::UnitState::kDead) ++dead_u;
    core::IoStatus st;
    dev.EraseUnit(0, dead_u, [&](core::IoStatus s) { st = s; });
    sim.Run();
    EXPECT_EQ(st.error, core::IoError::kUnitDead);
    EXPECT_EQ(dev.unit_state(0, dead_u), core::UnitState::kDead);
}

// ---------------------------------------------------------------------------
// Network timeout and retry
// ---------------------------------------------------------------------------

TEST(NetworkRetry, TimesOutBacksOffAndGivesUp)
{
    sim::Simulator sim;
    net::NetworkSpec spec;
    spec.rpc_timeout = util::MsToNs(1);
    spec.rpc_max_retries = 3;
    spec.rpc_backoff_base = util::UsToNs(100);
    net::Network net(sim, spec, 1);

    int handler_runs = 0;
    bool done_ok = true;
    bool completed = false;
    net.RpcWithRetry(
        0, 256,
        [&](std::function<void(uint64_t)>) { ++handler_runs; },  // Black hole.
        [&](bool ok) {
            done_ok = ok;
            completed = true;
        });
    sim.Run();
    EXPECT_TRUE(completed);
    EXPECT_FALSE(done_ok);
    EXPECT_EQ(handler_runs, 4);  // Initial attempt + 3 retries.
    EXPECT_EQ(net.rpc_stats().timeouts, 4u);
    EXPECT_EQ(net.rpc_stats().retries, 3u);
    EXPECT_EQ(net.rpc_stats().failures, 1u);
    // Total elapsed covers 4 timeouts plus the backoff gaps.
    EXPECT_GE(sim.Now(), 4 * spec.rpc_timeout + 7 * spec.rpc_backoff_base);
}

TEST(NetworkRetry, FastResponseSucceedsWithoutRetries)
{
    sim::Simulator sim;
    net::NetworkSpec spec;
    spec.rpc_timeout = util::MsToNs(50);
    net::Network net(sim, spec, 1);
    bool done_ok = false;
    net.RpcWithRetry(
        0, 256, [](std::function<void(uint64_t)> reply) { reply(4096); },
        [&](bool ok) { done_ok = ok; });
    sim.Run();
    EXPECT_TRUE(done_ok);
    EXPECT_EQ(net.rpc_stats().timeouts, 0u);
    EXPECT_EQ(net.rpc_stats().retries, 0u);
    EXPECT_EQ(net.rpc_stats().failures, 0u);
}

// ---------------------------------------------------------------------------
// Replicated degraded-mode operation
// ---------------------------------------------------------------------------

struct TinyStack
{
    std::unique_ptr<core::SdfDevice> device;
    std::unique_ptr<blocklayer::BlockLayer> layer;
    std::unique_ptr<kv::SdfPatchStorage> storage;
    std::unique_ptr<kv::Store> store;
};

TinyStack
MakeTinyStack(sim::Simulator &sim, uint64_t seed)
{
    TinyStack s;
    core::SdfConfig cfg = TinyConfig();
    cfg.flash.seed = seed;
    s.device = std::make_unique<core::SdfDevice>(sim, cfg);
    s.layer = std::make_unique<blocklayer::BlockLayer>(
        sim, *s.device, blocklayer::BlockLayerConfig{});
    s.storage = std::make_unique<kv::SdfPatchStorage>(*s.layer);
    kv::StoreConfig sc;
    sc.slice_count = 2;
    s.store = std::make_unique<kv::Store>(sim, *s.storage, sc);
    return s;
}

void
KillDevice(core::SdfDevice &dev)
{
    for (uint32_t c = 0; c < dev.channel_count(); ++c) {
        dev.flash().channel(c).InjectDeath();
    }
}

TEST(ReplicatedKv, FailsOverAndReadRepairs)
{
    sim::Simulator sim;
    std::vector<TinyStack> stacks;
    std::vector<kv::Store *> stores;
    for (uint64_t r = 0; r < 3; ++r) {
        stacks.push_back(MakeTinyStack(sim, 1000 + r));
        stores.push_back(stacks.back().store.get());
    }
    kv::ReplicatedKv rep(sim, stores);

    const uint64_t key = 3;  // PrimaryOf(3) == 0.
    ASSERT_EQ(rep.PrimaryOf(key), 0u);
    bool put_ok = false;
    rep.Put(key, 4096, [&](bool ok) { put_ok = ok; });
    sim.Run();
    ASSERT_TRUE(put_ok);
    // Push the value out of every memtable so reads touch real media.
    for (auto &s : stacks) {
        for (uint32_t i = 0; i < s.store->slice_count(); ++i) {
            s.store->slice(i).Flush();
        }
    }
    sim.Run();

    KillDevice(*stacks[0].device);
    bool found = false, ok = false;
    rep.Get(key, [&](const kv::GetResult &res) {
        found = res.found;
        ok = res.ok;
    });
    sim.Run();
    EXPECT_TRUE(ok);
    EXPECT_TRUE(found);
    EXPECT_EQ(rep.stats().degraded_reads, 1u);
    EXPECT_GE(rep.stats().re_replications, 1u);
    EXPECT_EQ(rep.recovery_latencies().count(), 1u);

    // The repair re-put the value into replica 0 (its memtable still
    // accepts writes): a re-read of the repaired key is no longer
    // degraded.
    rep.Get(key, [](const kv::GetResult &res) { EXPECT_TRUE(res.found); });
    sim.Run();
    EXPECT_EQ(rep.stats().degraded_reads, 1u);
}

TEST(ReplicatedKv, AllReplicasDeadFailsCleanly)
{
    sim::Simulator sim;
    std::vector<TinyStack> stacks;
    std::vector<kv::Store *> stores;
    for (uint64_t r = 0; r < 3; ++r) {
        stacks.push_back(MakeTinyStack(sim, 3000 + r));
        stores.push_back(stacks.back().store.get());
    }
    kv::ReplicatedKv rep(sim, stores);
    bool put_ok = false;
    rep.Put(5, 4096, [&](bool ok) { put_ok = ok; });
    sim.Run();
    ASSERT_TRUE(put_ok);
    for (auto &s : stacks) {
        for (uint32_t i = 0; i < s.store->slice_count(); ++i) {
            s.store->slice(i).Flush();
        }
    }
    sim.Run();

    for (auto &s : stacks) KillDevice(*s.device);
    // Every replica's storage errors out: the read must fail cleanly —
    // and promptly — rather than hang.
    bool completed = false;
    rep.Get(5, [&](const kv::GetResult &res) {
        completed = true;
        EXPECT_FALSE(res.ok);
        EXPECT_FALSE(res.found);
    });
    sim.Run();
    EXPECT_TRUE(completed);
    EXPECT_EQ(rep.stats().failed_reads, 1u);
}

TEST(ReplicatedKv, PutSurvivesOneDeadReplica)
{
    sim::Simulator sim;
    std::vector<TinyStack> stacks;
    std::vector<kv::Store *> stores;
    for (uint64_t r = 0; r < 3; ++r) {
        stacks.push_back(MakeTinyStack(sim, 2000 + r));
        stores.push_back(stacks.back().store.get());
    }
    kv::ReplicatedKv rep(sim, stores);
    KillDevice(*stacks[1].device);

    bool put_ok = false;
    rep.Put(9, 4096, [&](bool ok) { put_ok = ok; });
    sim.Run();
    // Memtable writes ack even on the dead replica (its flush will fail
    // later); the put must report overall success either way.
    EXPECT_TRUE(put_ok);
    bool found = false;
    rep.Get(9, [&](const kv::GetResult &res) { found = res.found; });
    sim.Run();
    EXPECT_TRUE(found);
}

// ---------------------------------------------------------------------------
// Full campaign invariants
// ---------------------------------------------------------------------------

bench::FaultCampaignConfig
SmallCampaign(uint64_t seed)
{
    bench::FaultCampaignConfig cfg;
    cfg.keys = 150;
    cfg.reads = 300;
    cfg.writes = 40;
    cfg.fault_count = 100;
    cfg.horizon_sec = 0.2;
    cfg.seed = seed;
    return cfg;
}

TEST(FaultCampaign, NoDataLossAndAllRequestsComplete)
{
    const bench::FaultCampaignResult r =
        bench::RunFaultCampaign(SmallCampaign(5));
    EXPECT_EQ(r.faults.total() + r.faults.skipped, 100u);
    EXPECT_GE(r.keys_stored, 150u);
    EXPECT_EQ(r.keys_lost, 0u);
    EXPECT_EQ(r.requests_issued, 340u);
    EXPECT_EQ(r.requests_completed, r.requests_issued);
}

TEST(FaultCampaign, FingerprintIsSeedDeterministic)
{
    const bench::FaultCampaignResult a =
        bench::RunFaultCampaign(SmallCampaign(5));
    const bench::FaultCampaignResult b =
        bench::RunFaultCampaign(SmallCampaign(5));
    EXPECT_EQ(a.fingerprint, b.fingerprint);
    EXPECT_EQ(a.device.page_reads, b.device.page_reads);
    EXPECT_EQ(a.kv.degraded_reads, b.kv.degraded_reads);
    EXPECT_EQ(a.rpc.timeouts, b.rpc.timeouts);

    const bench::FaultCampaignResult c =
        bench::RunFaultCampaign(SmallCampaign(6));
    EXPECT_NE(a.fingerprint, c.fingerprint);
}

}  // namespace
}  // namespace sdf
