/**
 * @file
 * Unit tests for the FTL building blocks: wear leveler, bad block
 * manager, page map, block map, striping, and GC victim policies.
 */
#include <gtest/gtest.h>

#include "ftl/bad_block_manager.h"
#include "ftl/block_map.h"
#include "ftl/page_map.h"
#include "ftl/striping.h"
#include "ftl/wear_leveler.h"
#include "util/rng.h"

namespace sdf::ftl {
namespace {

// ---------------------------------------------------------------------------
// DynamicWearLeveler
// ---------------------------------------------------------------------------

TEST(WearLeveler, AllocatesLeastWornFirst)
{
    DynamicWearLeveler wl;
    wl.Release(1, 10);
    wl.Release(2, 3);
    wl.Release(3, 7);
    EXPECT_EQ(wl.Allocate(), 2u);
    EXPECT_EQ(wl.Allocate(), 3u);
    EXPECT_EQ(wl.Allocate(), 1u);
    EXPECT_TRUE(wl.Empty());
}

TEST(WearLeveler, TiesBreakByBlockId)
{
    DynamicWearLeveler wl;
    wl.Release(9, 5);
    wl.Release(4, 5);
    EXPECT_EQ(wl.Allocate(), 4u);
    EXPECT_EQ(wl.Allocate(), 9u);
}

TEST(WearLeveler, RotationEqualizesWear)
{
    // Allocate/erase/release cycles must spread wear evenly.
    DynamicWearLeveler wl;
    std::vector<uint32_t> erase_count(8, 0);
    for (uint32_t b = 0; b < 8; ++b) wl.Release(b, 0);
    for (int round = 0; round < 800; ++round) {
        const uint32_t b = wl.Allocate();
        ++erase_count[b];
        wl.Release(b, erase_count[b]);
    }
    uint32_t min_ec = 1000000, max_ec = 0;
    for (uint32_t ec : erase_count) {
        min_ec = std::min(min_ec, ec);
        max_ec = std::max(max_ec, ec);
    }
    EXPECT_LE(max_ec - min_ec, 1u);
}

TEST(WearLeveler, MinEraseCountPeeks)
{
    DynamicWearLeveler wl;
    wl.Release(0, 42);
    EXPECT_EQ(wl.MinEraseCount(), 42u);
    EXPECT_EQ(wl.FreeCount(), 1u);
}

// ---------------------------------------------------------------------------
// BadBlockManager
// ---------------------------------------------------------------------------

TEST(BadBlockManager, ExcludesFactoryBadAndSpares)
{
    BadBlockManager bbm(100, {5, 10, 15}, 7);
    EXPECT_EQ(bbm.usable_blocks().size(), 100u - 3 - 7);
    EXPECT_TRUE(bbm.IsBad(5));
    EXPECT_FALSE(bbm.IsBad(6));
    EXPECT_EQ(bbm.spares_left(), 7u);
    for (uint32_t b : bbm.usable_blocks()) EXPECT_FALSE(bbm.IsBad(b));
}

TEST(BadBlockManager, RetireDrawsFromSpares)
{
    BadBlockManager bbm(50, {}, 3);
    const uint32_t victim = bbm.usable_blocks()[0];
    const uint32_t repl1 = bbm.RetireBlock(victim);
    EXPECT_NE(repl1, kNoSpare);
    EXPECT_TRUE(bbm.IsBad(victim));
    EXPECT_EQ(bbm.spares_left(), 2u);
    EXPECT_EQ(bbm.grown_bad_count(), 1u);

    bbm.RetireBlock(bbm.usable_blocks()[1]);
    bbm.RetireBlock(bbm.usable_blocks()[2]);
    EXPECT_EQ(bbm.spares_left(), 0u);
    EXPECT_EQ(bbm.RetireBlock(bbm.usable_blocks()[3]), kNoSpare);
}

TEST(BadBlockManager, ExhaustionKeepsCountingGrownBad)
{
    // Past spare exhaustion, retirements still mark blocks bad and keep
    // the grown-bad ledger accurate -- the device layer relies on this
    // to report honest wear statistics after units start dying.
    BadBlockManager bbm(10, {0}, 2);
    const uint32_t usable = static_cast<uint32_t>(bbm.usable_blocks().size());
    ASSERT_EQ(usable, 10u - 1 - 2);
    uint32_t retired = 0;
    for (uint32_t i = 0; i < usable; ++i) {
        const uint32_t b = bbm.usable_blocks()[i];
        const uint32_t repl = bbm.RetireBlock(b);
        ++retired;
        EXPECT_TRUE(bbm.IsBad(b));
        if (retired <= 2) {
            EXPECT_NE(repl, kNoSpare);
            EXPECT_FALSE(bbm.IsBad(repl));
        } else {
            EXPECT_EQ(repl, kNoSpare);
        }
        EXPECT_EQ(bbm.grown_bad_count(), retired);
    }
    EXPECT_EQ(bbm.spares_left(), 0u);
    EXPECT_EQ(bbm.grown_bad_count(), usable);
}

// ---------------------------------------------------------------------------
// PageMap
// ---------------------------------------------------------------------------

TEST(PageMap, UpdateTracksReverseAndValidity)
{
    PageMap map(16, 32, 8);
    EXPECT_EQ(map.Lookup(0), kUnmappedPage);
    EXPECT_EQ(map.Update(0, 5), kUnmappedPage);
    EXPECT_EQ(map.Lookup(0), 5u);
    EXPECT_EQ(map.ReverseLookup(5), 0u);
    EXPECT_EQ(map.ValidCount(0), 1u);
    EXPECT_EQ(map.mapped_pages(), 1u);

    // Remap elsewhere: old physical page invalidated.
    EXPECT_EQ(map.Update(0, 9), 5u);
    EXPECT_EQ(map.ReverseLookup(5), kUnmappedPage);
    EXPECT_EQ(map.ValidCount(0), 0u);
    EXPECT_EQ(map.ValidCount(1), 1u);
}

TEST(PageMap, InvalidateClears)
{
    PageMap map(16, 32, 8);
    map.Update(3, 17);
    EXPECT_EQ(map.Invalidate(3), 17u);
    EXPECT_EQ(map.Lookup(3), kUnmappedPage);
    EXPECT_EQ(map.mapped_pages(), 0u);
    EXPECT_EQ(map.Invalidate(3), kUnmappedPage);
}

TEST(PageMap, ValidLogicalPagesListsBlockContents)
{
    PageMap map(16, 32, 8);
    map.Update(1, 8);   // block 1
    map.Update(2, 9);   // block 1
    map.Update(3, 16);  // block 2
    const auto pages = map.ValidLogicalPages(1);
    EXPECT_EQ(pages, (std::vector<uint32_t>{1, 2}));
}

TEST(PageMap, GreedyVictimPicksFewestValid)
{
    PageMap map(32, 64, 8);
    // Block 0: 3 valid; block 1: 1 valid; block 2: 2 valid.
    map.Update(0, 0);
    map.Update(1, 1);
    map.Update(2, 2);
    map.Update(3, 8);
    map.Update(4, 16);
    map.Update(5, 17);
    const std::vector<uint32_t> candidates{0, 1, 2};
    EXPECT_EQ(PickGreedyVictim(map, candidates), 1u);
}

TEST(PageMap, CostBenefitPrefersOldWhenEquallyValid)
{
    PageMap map(32, 64, 8);
    map.Update(0, 0);
    map.Update(1, 8);
    const std::vector<uint32_t> candidates{0, 1};
    const std::vector<uint64_t> ages{1000, 10};
    EXPECT_EQ(PickCostBenefitVictim(map, candidates, ages, 8), 0u);
}

TEST(PageMap, VictimSelectionOnEmptyCandidates)
{
    PageMap map(8, 16, 8);
    EXPECT_EQ(PickGreedyVictim(map, {}), SIZE_MAX);
}

// ---------------------------------------------------------------------------
// BlockMap
// ---------------------------------------------------------------------------

TEST(BlockMap, SetLookupClear)
{
    BlockMap map(8);
    EXPECT_EQ(map.Lookup(0), kUnmappedBlock);
    EXPECT_EQ(map.Set(0, 42), kUnmappedBlock);
    EXPECT_EQ(map.Lookup(0), 42u);
    EXPECT_EQ(map.Set(0, 43), 42u);
    EXPECT_EQ(map.Clear(0), 43u);
    EXPECT_EQ(map.Lookup(0), kUnmappedBlock);
}

// ---------------------------------------------------------------------------
// StripingLayout
// ---------------------------------------------------------------------------

TEST(Striping, RoundRobinChannelAssignment)
{
    StripingLayout layout(4, 8192);
    EXPECT_EQ(layout.ChannelOf(0), 0u);
    EXPECT_EQ(layout.ChannelOf(8192), 1u);
    EXPECT_EQ(layout.ChannelOf(3 * 8192), 3u);
    EXPECT_EQ(layout.ChannelOf(4 * 8192), 0u);
}

TEST(Striping, ChannelOffsetsAreDense)
{
    StripingLayout layout(4, 8192);
    // Stripes 0,4,8,... land on channel 0 at offsets 0,8192,16384,...
    EXPECT_EQ(layout.ChannelOffset(0), 0u);
    EXPECT_EQ(layout.ChannelOffset(4 * 8192), 8192u);
    EXPECT_EQ(layout.ChannelOffset(8 * 8192), 2u * 8192);
    // Offset within a stripe is preserved.
    EXPECT_EQ(layout.ChannelOffset(4 * 8192 + 100), 8192u + 100);
}

TEST(Striping, SplitCoversRangeExactly)
{
    StripingLayout layout(44, 8192);
    const auto chunks = layout.Split(3 * 8192 + 100, 5 * 8192);
    uint64_t total = 0;
    for (const auto &c : chunks) total += c.length;
    EXPECT_EQ(total, 5u * 8192);
    // First chunk is the tail of the starting stripe.
    EXPECT_EQ(chunks[0].length, 8192u - 100);
    EXPECT_EQ(chunks[0].channel, 3u);
    EXPECT_EQ(chunks[1].channel, 4u);
}

TEST(Striping, LargeRequestTouchesAllChannels)
{
    StripingLayout layout(44, 8192);
    const auto chunks = layout.Split(0, 44 * 8192);
    EXPECT_EQ(chunks.size(), 44u);
    std::vector<bool> seen(44, false);
    for (const auto &c : chunks) seen[c.channel] = true;
    for (bool s : seen) EXPECT_TRUE(s);
}

}  // namespace
}  // namespace sdf::ftl
