/**
 * @file
 * Unit tests for the host I/O stack model and the client/server network.
 */
#include <gtest/gtest.h>

#include "host/io_stack.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace sdf {
namespace {

TEST(IoStack, SpecsMatchPaperNumbers)
{
    const auto kernel = host::KernelIoStackSpec();
    // §4.3: ~12.9 us total on a 2.4 GHz server CPU.
    EXPECT_NEAR(util::NsToUs(kernel.issue_cost + kernel.completion_cost),
                12.9, 0.5);
    const auto user = host::SdfUserStackSpec();
    // §2.4: 2-4 us.
    const double total = util::NsToUs(user.issue_cost + user.completion_cost);
    EXPECT_GE(total, 2.0);
    EXPECT_LE(total, 4.0);
}

TEST(IoStack, AddsIssueAndCompletionLatency)
{
    sim::Simulator sim;
    host::IoStack stack(sim, host::KernelIoStackSpec(), 1);
    util::TimeNs done_at = 0;
    stack.Issue(
        [&sim](sim::Callback done) {
            sim.Schedule(util::UsToNs(100), std::move(done));
        },
        [&]() { done_at = sim.Now(); });
    sim.Run();
    EXPECT_EQ(done_at, util::UsToNs(100) + util::UsToNs(3.8) +
                           util::UsToNs(9.1));
    EXPECT_EQ(stack.requests(), 1u);
    EXPECT_EQ(stack.cpu_time(), util::UsToNs(12.9));
}

TEST(IoStack, NullStackIsFree)
{
    sim::Simulator sim;
    host::IoStack stack(sim, host::NullIoStackSpec(), 1);
    util::TimeNs done_at = 1;
    stack.Issue([](sim::Callback done) { done(); },
                [&]() { done_at = sim.Now(); });
    sim.Run();
    EXPECT_EQ(done_at, 0);
}

TEST(IoStack, SingleCpuSaturates)
{
    sim::Simulator sim;
    host::IoStackSpec spec{"test", util::UsToNs(10), 0};
    host::IoStack stack(sim, spec, 1);
    int done = 0;
    for (int i = 0; i < 10; ++i) {
        stack.Issue([](sim::Callback d) { d(); }, [&]() { ++done; });
    }
    sim.Run();
    EXPECT_EQ(done, 10);
    // Ten issues of 10 us on one CPU serialize to 100 us.
    EXPECT_EQ(sim.Now(), util::UsToNs(100));
}

TEST(IoStack, MultipleCpusParallelize)
{
    sim::Simulator sim;
    host::IoStackSpec spec{"test", util::UsToNs(10), 0};
    host::IoStack stack(sim, spec, 10);
    for (int i = 0; i < 10; ++i) {
        stack.Issue([](sim::Callback d) { d(); }, nullptr);
    }
    sim.Run();
    EXPECT_EQ(sim.Now(), util::UsToNs(10));
}

TEST(ClosedLoopActor, IteratesUntilStopped)
{
    sim::Simulator sim;
    host::ClosedLoopActor actor(sim, [&sim](sim::Callback done) {
        sim.Schedule(util::UsToNs(10), std::move(done));
    });
    actor.Start();
    sim.RunUntil(util::UsToNs(105));
    actor.Stop();
    sim.Run();
    // One iteration per 10 us.
    EXPECT_GE(actor.completed(), 10u);
    EXPECT_LE(actor.completed(), 11u);
}

TEST(ClosedLoopActor, StopPreventsFurtherIterations)
{
    sim::Simulator sim;
    int iterations = 0;
    host::ClosedLoopActor actor(sim, [&](sim::Callback done) {
        ++iterations;
        sim.Schedule(1, std::move(done));
    });
    actor.Start();
    sim.RunUntil(5);
    actor.Stop();
    sim.Run();
    const int at_stop = iterations;
    EXPECT_LE(iterations, at_stop);
}

TEST(Network, RpcRoundTripLatency)
{
    sim::Simulator sim;
    net::NetworkSpec spec;
    spec.one_way_delay = util::UsToNs(50);
    spec.server_per_message = util::UsToNs(10);
    spec.worker_per_byte_ns = 0;
    net::Network net(sim, spec, 1);

    util::TimeNs done_at = 0;
    net.Rpc(0, 256,
            [](std::function<void(uint64_t)> reply) { reply(1024); },
            [&]() { done_at = sim.Now(); });
    sim.Run();
    // Two one-way delays + two server message costs + transfer times.
    EXPECT_GT(done_at, util::UsToNs(120));
    EXPECT_LT(done_at, util::UsToNs(140));
    EXPECT_EQ(net.bytes_to_clients(), 1024u);
}

TEST(Network, LargeResponsesBoundByClientNic)
{
    sim::Simulator sim;
    net::NetworkSpec spec;
    net::Network net(sim, spec, 1);
    // 118 MB at ~1.18 GB/s -> ~100 ms.
    util::TimeNs done_at = 0;
    net.Rpc(0, 64,
            [](std::function<void(uint64_t)> reply) {
                reply(static_cast<uint64_t>(118e6));
            },
            [&]() { done_at = sim.Now(); });
    sim.Run();
    EXPECT_GT(done_at, util::MsToNs(100));
    EXPECT_LT(done_at, util::MsToNs(320));
}

TEST(Network, ServerNicSharedAcrossClients)
{
    sim::Simulator sim;
    net::NetworkSpec spec;
    spec.worker_per_byte_ns = 0;  // Isolate the NIC path.
    net::Network net(sim, spec, 4);
    // Four clients each pull ~236 MB: aggregate 944 MB at 2.36 GB/s
    // server-side = 400 ms minimum.
    int done = 0;
    for (uint32_t c = 0; c < 4; ++c) {
        net.Rpc(c, 64,
                [](std::function<void(uint64_t)> reply) {
                    reply(static_cast<uint64_t>(236e6));
                },
                [&]() { ++done; });
    }
    sim.Run();
    EXPECT_EQ(done, 4);
    EXPECT_GT(sim.Now(), util::MsToNs(395));
}

TEST(Network, PerByteWorkerCostCharged)
{
    sim::Simulator sim;
    net::NetworkSpec fast;
    fast.worker_per_byte_ns = 0;
    net::NetworkSpec slow = fast;
    slow.worker_per_byte_ns = 2.0;

    auto run = [](net::NetworkSpec spec) {
        sim::Simulator s;
        net::Network net(s, spec, 1);
        util::TimeNs done_at = 0;
        net.Rpc(0, 64,
                [](std::function<void(uint64_t)> reply) { reply(1000000); },
                [&]() { done_at = s.Now(); });
        s.Run();
        return done_at;
    };
    EXPECT_GT(run(slow), run(fast) + util::MsToNs(1));
}

}  // namespace
}  // namespace sdf
