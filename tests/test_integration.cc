/**
 * @file
 * End-to-end integration tests: the full CCDB stack on both SDF and the
 * conventional SSD, workload drivers, preloading, and cross-device
 * behavioural comparisons the paper's evaluation rests on.
 */
#include <gtest/gtest.h>

#include <memory>

#include "blocklayer/block_layer.h"
#include "kv/patch_storage.h"
#include "kv/slice.h"
#include "kv/store.h"
#include "net/network.h"
#include "sdf/sdf_device.h"
#include "sim/simulator.h"
#include "ssd/conventional_ssd.h"
#include "workload/kv_driver.h"
#include "workload/raw_device.h"

namespace sdf {
namespace {

using workload::KvRunConfig;
using workload::KvRunResult;
using workload::Pattern;

core::SdfConfig
FastSdf(double scale = 0.02)
{
    core::SdfConfig c = core::BaiduSdfConfig(scale);
    c.flash.timing = nand::FastTestTiming();
    return c;
}

TEST(Integration, KvStackOnSdfServesMixedWorkload)
{
    sim::Simulator sim;
    core::SdfDevice device(sim, FastSdf());
    blocklayer::BlockLayer layer(sim, device, {});
    host::IoStack stack(sim, host::SdfUserStackSpec());
    kv::SdfPatchStorage storage(layer, &stack);
    kv::IdAllocator ids;
    kv::SliceConfig scfg;
    scfg.compaction_trigger = 3;
    kv::Slice slice(sim, storage, ids, scfg);

    // Write enough to force several flushes and at least one compaction.
    util::Rng rng(3);
    int put_ok = 0;
    for (int i = 0; i < 200; ++i) {
        slice.Put(rng.NextBelow(500),
                  static_cast<uint32_t>(100 * 1024 +
                                        rng.NextBelow(400 * 1024)),
                  [&](bool ok) { put_ok += ok; });
    }
    sim.Run();
    EXPECT_EQ(put_ok, 200);
    EXPECT_GE(slice.stats().flushes, 4u);
    EXPECT_GE(slice.stats().compactions, 1u);

    // Every key written must be retrievable.
    int found = 0, checked = 0;
    for (uint64_t k = 0; k < 500; k += 13) {
        ++checked;
        slice.Get(k, [&](const kv::GetResult &r) {
            if (r.found) ++found;
        });
    }
    sim.Run();
    EXPECT_GT(found, 0);
    EXPECT_LE(found, checked);

    // The SDF saw only whole-unit writes and explicit erases.
    EXPECT_GT(device.stats().unit_writes, 0u);
    EXPECT_EQ(device.stats().contract_violations, 0u);
}

TEST(Integration, KvStackOnConventionalSsd)
{
    sim::Simulator sim;
    ssd::ConventionalSsdConfig cfg = ssd::HuaweiGen3Config(0.02);
    cfg.flash.timing = nand::FastTestTiming();
    ssd::ConventionalSsd device(sim, cfg);
    host::IoStack stack(sim, host::KernelIoStackSpec());
    kv::SsdPatchStorage storage(device, 8 * util::kMiB, &stack);
    kv::IdAllocator ids;
    kv::Slice slice(sim, storage, ids, {});

    for (int i = 0; i < 50; ++i) {
        slice.Put(i, 512 * 1024, nullptr);
    }
    slice.Flush();
    sim.Run();
    EXPECT_GE(slice.stats().flushes, 1u);

    int found = 0;
    for (uint64_t k = 0; k < 50; ++k) {
        slice.Get(k, [&](const kv::GetResult &r) {
            if (r.found) ++found;
        });
    }
    sim.Run();
    EXPECT_EQ(found, 50);
    EXPECT_GT(device.stats().host_writes, 0u);
}

TEST(Integration, PreloadProducesReadableKeys)
{
    sim::Simulator sim;
    core::SdfDevice device(sim, FastSdf());
    blocklayer::BlockLayer layer(sim, device, {});
    kv::SdfPatchStorage storage(layer);
    kv::IdAllocator ids;
    kv::Slice slice(sim, storage, ids, {});

    const auto keys = workload::PreloadSlices({&slice}, 64 * util::kMiB,
                                              512 * 1024);
    ASSERT_EQ(keys.size(), 1u);
    EXPECT_EQ(keys[0].size(), 128u);  // 64 MiB / 512 KiB.
    EXPECT_EQ(sim.Now(), 0);

    int found = 0;
    for (size_t i = 0; i < keys[0].size(); i += 11) {
        slice.Get(keys[0][i], [&](const kv::GetResult &r) {
            if (r.found) ++found;
        });
    }
    sim.Run();
    EXPECT_EQ(found, static_cast<int>((keys[0].size() + 10) / 11));
}

TEST(Integration, BatchedReadDriverDeliversBytes)
{
    sim::Simulator sim;
    core::SdfDevice device(sim, FastSdf());
    blocklayer::BlockLayer layer(sim, device, {});
    kv::SdfPatchStorage storage(layer);
    kv::IdAllocator ids;
    kv::Slice slice(sim, storage, ids, {});
    const auto keys =
        workload::PreloadSlices({&slice}, 64 * util::kMiB, 512 * 1024);

    net::Network net(sim, {}, 1);
    KvRunConfig run;
    run.warmup = util::MsToNs(50);
    run.duration = util::MsToNs(500);
    const KvRunResult r =
        workload::RunBatchedRandomReads(sim, net, {&slice}, keys, 8, run);
    EXPECT_GT(r.client_mbps, 0.0);
    EXPECT_GT(r.requests, 0u);
}

TEST(Integration, ScanDriverReadsWholePatches)
{
    sim::Simulator sim;
    core::SdfDevice device(sim, FastSdf());
    blocklayer::BlockLayer layer(sim, device, {});
    kv::SdfPatchStorage storage(layer);
    kv::IdAllocator ids;
    kv::Slice slice(sim, storage, ids, {});
    workload::PreloadSlices({&slice}, 64 * util::kMiB, 512 * 1024);

    KvRunConfig run;
    run.warmup = util::MsToNs(20);
    run.duration = util::MsToNs(300);
    const KvRunResult r = workload::RunSequentialScan(sim, {&slice}, 6, run);
    EXPECT_GT(r.client_mbps, 0.0);
    EXPECT_GT(device.stats().page_reads, 0u);
    // Scan throughput is reported in both units: completed patch reads
    // per second and the bytes they scanned, and the two agree with the
    // aggregate MB/s over the measurement window.
    EXPECT_GT(r.ops_per_sec, 0.0);
    EXPECT_GT(r.scanned_bytes, 0u);
    EXPECT_NEAR(static_cast<double>(r.scanned_bytes) /
                    util::NsToSec(run.duration) / util::kMB,
                r.client_mbps, r.client_mbps * 0.01 + 1e-9);
}

TEST(Integration, WriteDriverGeneratesCompactionTraffic)
{
    sim::Simulator sim;
    core::SdfDevice device(sim, FastSdf());
    blocklayer::BlockLayer layer(sim, device, {});
    kv::SdfPatchStorage storage(layer);
    kv::IdAllocator ids;
    kv::SliceConfig scfg;
    scfg.compaction_trigger = 3;
    kv::Slice slice(sim, storage, ids, scfg);

    net::Network net(sim, {}, 1);
    KvRunConfig run;
    run.warmup = util::MsToNs(100);
    run.duration = util::SecToNs(1.5);
    const KvRunResult r = workload::RunKvWrites(sim, net, {&slice},
                                                100 * 1024, util::kMiB, run);
    EXPECT_GT(r.device_write_mbps, 0.0);
    EXPECT_GT(r.requests, 0u);
    EXPECT_GE(slice.stats().flushes, 2u);
}

TEST(Integration, SdfChannelAffinityVsSsdStriping)
{
    // The architectural contrast of Figure 5: one 512 KB request occupies
    // a single SDF channel but spreads over every channel of the
    // conventional SSD.
    sim::Simulator sim;
    core::SdfDevice sdf_dev(sim, core::BaiduSdfConfig(0.02));
    workload::PreconditionSdf(sdf_dev);
    sdf_dev.Read(0, 0, 0, 512 * util::kKiB, nullptr);
    sim.Run();
    uint32_t sdf_busy = 0;
    for (uint32_t c = 0; c < sdf_dev.channel_count(); ++c) {
        if (sdf_dev.flash().channel(c).stats().reads > 0) ++sdf_busy;
    }
    EXPECT_EQ(sdf_busy, 1u);

    sim::Simulator sim2;
    ssd::ConventionalSsd ssd_dev(sim2, ssd::HuaweiGen3Config(0.02));
    ssd_dev.PreconditionFill(0.5);
    ssd_dev.Read(0, 512 * util::kKiB, nullptr);
    sim2.Run();
    uint32_t ssd_busy = 0;
    for (uint32_t c = 0; c < 44; ++c) {
        if (ssd_dev.flash().channel(c).stats().reads > 0) ++ssd_busy;
    }
    EXPECT_EQ(ssd_busy, 44u);
}

TEST(Integration, SdfLatencyPredictableSsdLatencyVariable)
{
    // Figure 8's qualitative claim on a nearly-full device.
    workload::RawRunConfig run;
    run.warmup = util::MsToNs(100);
    run.duration = util::SecToNs(4.0);

    sim::Simulator sim;
    core::SdfDevice sdf_dev(sim, core::BaiduSdfConfig(0.02));
    host::IoStack sdf_stack(sim, host::SdfUserStackSpec());
    workload::PreconditionSdf(sdf_dev);
    const auto sdf_result =
        workload::RunSdfWrites(sim, sdf_dev, sdf_stack, 1, run);

    sim::Simulator sim2;
    ssd::ConventionalSsd ssd_dev(sim2, ssd::HuaweiGen3Config(0.02));
    host::IoStack ssd_stack(sim2, host::KernelIoStackSpec());
    ssd_dev.PreconditionFill(0.98);
    const auto ssd_result = workload::RunConvWrites(
        sim2, ssd_dev, ssd_stack, 1, 8 * util::kMiB, Pattern::kRandom, run);

    // SDF: tight latency. SSD: write-back cache + GC make it erratic.
    const double sdf_cv =
        sdf_result.latencies.StdDevMs() / sdf_result.latencies.MeanMs();
    const double ssd_cv =
        ssd_result.latencies.StdDevMs() /
        std::max(ssd_result.latencies.MeanMs(), 1e-9);
    EXPECT_LT(sdf_cv, 0.05);
    EXPECT_GT(ssd_cv, 2 * sdf_cv);
}

}  // namespace
}  // namespace sdf
