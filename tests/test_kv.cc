/**
 * @file
 * Unit tests for CCDB: memtable, patch metadata, the compaction merge
 * kernel, slice put/get/flush/compaction behaviour, and the store facades.
 */
#include <gtest/gtest.h>

#include <memory>

#include "blocklayer/block_layer.h"
#include "kv/memtable.h"
#include "kv/patch.h"
#include "kv/slice.h"
#include "kv/store.h"
#include "sdf/sdf_device.h"
#include "sim/simulator.h"
#include "util/fingerprint.h"

namespace sdf::kv {
namespace {

// ---------------------------------------------------------------------------
// MemTable
// ---------------------------------------------------------------------------

TEST(MemTable, AddLookupAndByteAccounting)
{
    MemTable mt(1000);
    mt.Add(KvItem{1, 100, nullptr});
    mt.Add(KvItem{2, 200, nullptr});
    EXPECT_EQ(mt.bytes(), 300u);
    EXPECT_EQ(mt.count(), 2u);
    ASSERT_NE(mt.Lookup(1), nullptr);
    EXPECT_EQ(mt.Lookup(1)->value_size, 100u);
    EXPECT_EQ(mt.Lookup(3), nullptr);
}

TEST(MemTable, ReplacementAdjustsBytes)
{
    MemTable mt(1000);
    mt.Add(KvItem{1, 100, nullptr});
    mt.Add(KvItem{1, 300, nullptr});
    EXPECT_EQ(mt.bytes(), 300u);
    EXPECT_EQ(mt.count(), 1u);
    EXPECT_EQ(mt.Lookup(1)->value_size, 300u);
}

TEST(MemTable, OverflowDetection)
{
    MemTable mt(500);
    mt.Add(KvItem{1, 400, nullptr});
    EXPECT_FALSE(mt.WouldOverflow(100));
    EXPECT_TRUE(mt.WouldOverflow(101));
}

TEST(MemTable, TakeAllResets)
{
    MemTable mt(1000);
    mt.Add(KvItem{1, 10, nullptr});
    mt.Add(KvItem{2, 20, nullptr});
    const auto items = mt.TakeAll();
    EXPECT_EQ(items.size(), 2u);
    EXPECT_TRUE(mt.empty());
    EXPECT_EQ(mt.bytes(), 0u);
}

// ---------------------------------------------------------------------------
// PatchMeta and the merge kernel
// ---------------------------------------------------------------------------

TEST(PatchMeta, BuildSortsAndAssignsOffsets)
{
    std::vector<KvItem> items{{30, 100, nullptr}, {10, 50, nullptr},
                              {20, 25, nullptr}};
    const auto meta = PatchMeta::Build(1, 1, items, 8 * util::kMiB);
    ASSERT_EQ(meta.entries().size(), 3u);
    EXPECT_EQ(meta.entries()[0].key, 10u);
    EXPECT_EQ(meta.entries()[0].offset, 0u);
    EXPECT_EQ(meta.entries()[1].key, 20u);
    EXPECT_EQ(meta.entries()[1].offset, 50u);
    EXPECT_EQ(meta.entries()[2].key, 30u);
    EXPECT_EQ(meta.entries()[2].offset, 75u);
    EXPECT_EQ(meta.data_bytes(), 175u);
    EXPECT_EQ(meta.min_key(), 10u);
    EXPECT_EQ(meta.max_key(), 30u);
}

TEST(PatchMeta, FindBinarySearches)
{
    std::vector<KvItem> items;
    for (uint64_t k = 0; k < 100; k += 2) items.push_back({k, 10, nullptr});
    const auto meta = PatchMeta::Build(1, 1, items, 8 * util::kMiB);
    ASSERT_NE(meta.Find(42), nullptr);
    EXPECT_EQ(meta.Find(42)->key, 42u);
    EXPECT_EQ(meta.Find(43), nullptr);
    EXPECT_EQ(meta.Find(1000), nullptr);
}

TEST(MergeEntries, NewestVersionWins)
{
    const auto old_patch =
        PatchMeta::Build(1, 1, {{5, 10, nullptr}, {6, 10, nullptr}}, 1 << 20);
    const auto new_patch = PatchMeta::Build(2, 2, {{5, 30, nullptr}}, 1 << 20);
    const auto parts = MergeEntries({&old_patch, &new_patch}, 1 << 20);
    ASSERT_EQ(parts.size(), 1u);
    ASSERT_EQ(parts[0].size(), 2u);
    EXPECT_EQ(parts[0][0].key, 5u);
    EXPECT_EQ(parts[0][0].value_size, 30u);  // seq 2 wins.
    EXPECT_EQ(parts[0][1].key, 6u);
}

TEST(MergeEntries, PartitionsAtPatchBoundary)
{
    std::vector<KvItem> items;
    for (uint64_t k = 0; k < 10; ++k) items.push_back({k, 400, nullptr});
    const auto meta = PatchMeta::Build(1, 1, items, 1 << 20);
    // Patch budget of 1000 bytes: two 400-byte values per output.
    const auto parts = MergeEntries({&meta}, 1000);
    EXPECT_EQ(parts.size(), 5u);
    for (const auto &p : parts) EXPECT_EQ(p.size(), 2u);
}

TEST(MergeEntries, OutputStaysSorted)
{
    const auto a =
        PatchMeta::Build(1, 1, {{9, 1, nullptr}, {3, 1, nullptr}}, 1 << 20);
    const auto b =
        PatchMeta::Build(2, 2, {{5, 1, nullptr}, {1, 1, nullptr}}, 1 << 20);
    const auto parts = MergeEntries({&a, &b}, 1 << 20);
    ASSERT_EQ(parts.size(), 1u);
    uint64_t prev = 0;
    for (const auto &e : parts[0]) {
        EXPECT_GT(e.key, prev);
        prev = e.key;
    }
}

// ---------------------------------------------------------------------------
// Slice on SDF-backed storage
// ---------------------------------------------------------------------------

struct SliceFixture
{
    sim::Simulator sim;
    core::SdfDevice device;
    blocklayer::BlockLayer layer;
    SdfPatchStorage storage;
    IdAllocator ids;
    std::unique_ptr<Slice> slice;

    explicit SliceFixture(SliceConfig cfg = {}, bool payloads = false,
                          double scale = 0.02)
        : device(sim, MakeConfig(payloads, scale)),
          layer(sim, device, {}),
          storage(layer)
    {
        slice = std::make_unique<Slice>(sim, storage, ids, cfg);
    }

    static core::SdfConfig
    MakeConfig(bool payloads, double scale)
    {
        core::SdfConfig c = core::BaiduSdfConfig(scale);
        c.flash.timing = nand::FastTestTiming();
        c.flash.store_payloads = payloads;
        return c;
    }
};

TEST(Slice, GetFromMemtableBeforeFlush)
{
    SliceFixture f;
    bool put_ok = false;
    f.slice->Put(42, 1000, [&](bool ok) { put_ok = ok; });
    f.sim.Run();
    EXPECT_TRUE(put_ok);

    GetResult result;
    f.slice->Get(42, [&](const GetResult &r) { result = r; });
    f.sim.Run();
    EXPECT_TRUE(result.found);
    EXPECT_EQ(result.value_size, 1000u);
    EXPECT_EQ(f.slice->stats().gets_from_memtable, 1u);
}

TEST(Slice, MissingKeyNotFound)
{
    SliceFixture f;
    GetResult result;
    result.found = true;
    f.slice->Get(7, [&](const GetResult &r) { result = r; });
    f.sim.Run();
    EXPECT_FALSE(result.found);
    EXPECT_TRUE(result.ok);
}

TEST(Slice, FlushMovesDataToStorage)
{
    SliceFixture f;
    for (uint64_t k = 0; k < 10; ++k) f.slice->Put(k, 100 * 1024, nullptr);
    f.sim.Run();
    f.slice->Flush();
    f.sim.Run();
    EXPECT_EQ(f.slice->stats().flushes, 1u);
    EXPECT_EQ(f.slice->patch_count(), 1u);

    // Served from storage now, not the memtable.
    GetResult result;
    f.slice->Get(5, [&](const GetResult &r) { result = r; });
    f.sim.Run();
    EXPECT_TRUE(result.found);
    EXPECT_EQ(result.value_size, 100u * 1024);
    EXPECT_EQ(f.slice->stats().gets_from_memtable, 0u);
}

TEST(Slice, AutomaticFlushWhenMemtableFills)
{
    SliceFixture f;
    // 9 x 1 MB values exceed the 8 MB container: one automatic flush.
    for (uint64_t k = 0; k < 9; ++k) {
        f.slice->Put(k, util::kMiB, nullptr);
    }
    f.sim.Run();
    EXPECT_EQ(f.slice->stats().flushes, 1u);
}

TEST(Slice, OversizeValueRejected)
{
    SliceFixture f;
    bool ok = true;
    f.slice->Put(1, 9 * util::kMiB, [&](bool s) { ok = s; });
    f.sim.Run();
    EXPECT_FALSE(ok);
}

TEST(Slice, CompactionMergesLevelZero)
{
    SliceConfig cfg;
    cfg.compaction_trigger = 3;
    SliceFixture f(cfg);
    // Three flushes of overlapping keys trigger one compaction.
    for (int flush = 0; flush < 3; ++flush) {
        for (uint64_t k = 0; k < 8; ++k) {
            f.slice->Put(k, 900 * 1024, nullptr);
        }
        f.slice->Flush();
        f.sim.Run();
    }
    f.sim.Run();
    EXPECT_EQ(f.slice->stats().compactions, 1u);
    EXPECT_GT(f.slice->stats().compaction_bytes_read, 0u);
    EXPECT_GT(f.slice->stats().compaction_bytes_written, 0u);
    // Deduplicated: 8 distinct keys remain indexed.
    EXPECT_EQ(f.slice->total_indexed_keys(), 8u);

    // Keys still readable after their patches moved.
    GetResult result;
    f.slice->Get(3, [&](const GetResult &r) { result = r; });
    f.sim.Run();
    EXPECT_TRUE(result.found);
}

TEST(Slice, PutStallsWhenFlushBackedUp)
{
    SliceConfig cfg;
    SliceFixture f(cfg);
    // Two memtables' worth issued back-to-back: the second flush cannot
    // start until the first finishes, so some puts stall.
    for (uint64_t k = 0; k < 40; ++k) {
        f.slice->Put(k, util::kMiB, nullptr);
    }
    f.sim.Run();
    EXPECT_GT(f.slice->stats().put_stalls, 0u);
    EXPECT_GE(f.slice->stats().flushes, 2u);
}

TEST(Slice, PreloadedPatchesServeGets)
{
    SliceFixture f;
    std::vector<KvItem> items;
    for (uint64_t k = 100; k < 120; ++k) items.push_back({k, 4096, nullptr});
    ASSERT_TRUE(f.slice->DebugPreloadPatch(std::move(items)));
    EXPECT_EQ(f.sim.Now(), 0);

    GetResult result;
    f.slice->Get(110, [&](const GetResult &r) { result = r; });
    f.sim.Run();
    EXPECT_TRUE(result.found);
    EXPECT_EQ(result.value_size, 4096u);
}

TEST(Slice, ScanSeesAllPatches)
{
    SliceFixture f;
    for (int p = 0; p < 3; ++p) {
        std::vector<KvItem> items;
        for (uint64_t k = 0; k < 5; ++k)
            items.push_back({uint64_t(p) * 100 + k, 4096, nullptr});
        ASSERT_TRUE(f.slice->DebugPreloadPatch(std::move(items)));
    }
    EXPECT_EQ(f.slice->AllPatchIds().size(), 3u);

    bool ok = false;
    f.slice->ReadPatchFully(f.slice->AllPatchIds()[0],
                            [&](bool s) { ok = s; });
    f.sim.Run();
    EXPECT_TRUE(ok);
}

// ---------------------------------------------------------------------------
// Payload integrity through flush, read, and compaction
// ---------------------------------------------------------------------------

TEST(Slice, PayloadsSurviveFlushAndCompaction)
{
    SliceConfig cfg;
    cfg.store_payloads = true;
    cfg.compaction_trigger = 2;
    SliceFixture f(cfg, /*payloads=*/true);

    auto value = [](uint64_t k, int gen) {
        return std::make_shared<std::vector<uint8_t>>(
            util::MakeDeterministicPayload(64 * 1024, k * 1000 + gen));
    };

    // Two flushes with one overlapping key -> compaction.
    for (uint64_t k = 0; k < 4; ++k) {
        f.slice->Put(k, 64 * 1024, nullptr, value(k, 1));
    }
    f.slice->Flush();
    f.sim.Run();
    for (uint64_t k = 2; k < 6; ++k) {
        f.slice->Put(k, 64 * 1024, nullptr, value(k, 2));
    }
    f.slice->Flush();
    f.sim.Run();
    EXPECT_EQ(f.slice->stats().compactions, 1u);

    // Keys 0-1 from gen 1; 2-5 from gen 2.
    for (uint64_t k = 0; k < 6; ++k) {
        GetResult result;
        f.slice->Get(k, [&](const GetResult &r) { result = r; });
        f.sim.Run();
        ASSERT_TRUE(result.found) << "key " << k;
        ASSERT_TRUE(result.payload != nullptr);
        const int gen = k < 2 ? 1 : 2;
        EXPECT_EQ(*result.payload, *value(k, gen)) << "key " << k;
    }
}

// ---------------------------------------------------------------------------
// Store and facades
// ---------------------------------------------------------------------------

struct StoreFixture
{
    sim::Simulator sim;
    core::SdfDevice device;
    blocklayer::BlockLayer layer;
    SdfPatchStorage storage;
    Store store;

    StoreFixture()
        : device(sim, SliceFixture::MakeConfig(false, 0.02)),
          layer(sim, device, {}),
          storage(layer),
          store(sim, storage, StoreConfig{4, SliceConfig{}})
    {
    }
};

TEST(Store, ShardsKeysAcrossSlices)
{
    StoreFixture f;
    std::vector<int> hits(4, 0);
    for (uint64_t k = 0; k < 1000; ++k) ++hits[f.store.SliceOf(k)];
    for (int h : hits) EXPECT_GT(h, 150);
}

TEST(Store, PutGetThroughSharding)
{
    StoreFixture f;
    for (uint64_t k = 0; k < 20; ++k) f.store.Put(k, 1024, nullptr);
    f.sim.Run();
    int found = 0;
    for (uint64_t k = 0; k < 20; ++k) {
        f.store.Get(k, [&](const GetResult &r) {
            if (r.found) ++found;
        });
    }
    f.sim.Run();
    EXPECT_EQ(found, 20);
    EXPECT_EQ(f.store.TotalStats().puts, 20u);
}

// ---------------------------------------------------------------------------
// Store::Scan — ordered iteration across every key location: flushed
// patches, WAL/memtable-resident keys, and tombstones.
// ---------------------------------------------------------------------------

/** Collect a Scan's keys synchronously. */
std::vector<uint64_t>
ScanKeys(StoreFixture &f, uint64_t start, uint32_t limit, bool *ok = nullptr)
{
    std::vector<uint64_t> got;
    bool done_ok = false;
    f.store.Scan(start, limit, [&](const ScanResult &r) {
        done_ok = r.ok;
        for (const ScanEntry &e : r.entries) got.push_back(e.key);
    });
    f.sim.Run();
    if (ok != nullptr) *ok = done_ok;
    return got;
}

TEST(Store, ScanMergesFlushedAndMemResidentKeys)
{
    StoreFixture f;
    // Odd keys flushed to patches; even keys stay WAL/memtable-resident.
    for (uint64_t k = 1; k <= 40; k += 2) f.store.Put(k, 1024, nullptr);
    f.sim.Run();
    for (uint32_t s = 0; s < f.store.slice_count(); ++s) {
        f.store.slice(s).Flush();
    }
    f.sim.Run();
    for (uint64_t k = 2; k <= 40; k += 2) f.store.Put(k, 1024, nullptr);
    f.sim.Run();

    // The merged cut sees both locations, in order, with no duplicates.
    const auto all = ScanKeys(f, 1, 100);
    ASSERT_EQ(all.size(), 40u);
    for (uint64_t i = 0; i < 40; ++i) EXPECT_EQ(all[i], i + 1);

    // A bounded window from the middle: exactly limit keys, ascending.
    const auto window = ScanKeys(f, 15, 10);
    ASSERT_EQ(window.size(), 10u);
    for (uint64_t i = 0; i < 10; ++i) EXPECT_EQ(window[i], 15 + i);
}

TEST(Store, ScanSkipsTombstonesAndBackfillsTheWindow)
{
    StoreFixture f;
    for (uint64_t k = 1; k <= 30; ++k) f.store.Put(k, 1024, nullptr);
    f.sim.Run();
    for (uint32_t s = 0; s < f.store.slice_count(); ++s) {
        f.store.slice(s).Flush();
    }
    f.sim.Run();
    // Tombstone flushed keys 5 and 6 (delete lands in the memtable and
    // must shadow the patch versions) and mem-resident key 25 pre-flush.
    int deleted = 0;
    for (uint64_t k : {uint64_t{5}, uint64_t{6}}) {
        f.store.slice(f.store.SliceOf(k)).Delete(
            k, [&deleted](bool ok) { deleted += ok; });
    }
    f.store.Put(25, 2048, nullptr);  // Overwrite: newest version wins.
    f.sim.Run();
    ASSERT_EQ(deleted, 2);

    // Deleted keys vanish and the window backfills to the full limit
    // with their successors.
    const auto got = ScanKeys(f, 1, 10);
    const std::vector<uint64_t> want = {1, 2, 3, 4, 7, 8, 9, 10, 11, 12};
    EXPECT_EQ(got, want);

    // The overwritten key reports its newest size.
    bool ok = false;
    uint32_t size25 = 0;
    f.store.Scan(25, 1, [&](const ScanResult &r) {
        ok = r.ok;
        ASSERT_EQ(r.entries.size(), 1u);
        size25 = r.entries[0].value_size;
    });
    f.sim.Run();
    EXPECT_TRUE(ok);
    EXPECT_EQ(size25, 2048u);
}

TEST(Store, ScanTombstoneDeletedThenReinsertedKeyReappears)
{
    StoreFixture f;
    for (uint64_t k = 1; k <= 10; ++k) f.store.Put(k, 1024, nullptr);
    f.sim.Run();
    auto del = [&f](uint64_t k) {
        f.store.slice(f.store.SliceOf(k)).Delete(k, nullptr);
    };
    del(4);
    f.sim.Run();
    EXPECT_EQ(ScanKeys(f, 1, 10),
              (std::vector<uint64_t>{1, 2, 3, 5, 6, 7, 8, 9, 10}));

    f.store.Put(4, 512, nullptr);  // Reinsert over the tombstone.
    f.sim.Run();
    const auto got = ScanKeys(f, 1, 10);
    ASSERT_EQ(got.size(), 10u);
    EXPECT_EQ(got[3], 4u);
}

TEST(Store, ScanChargesDeviceReadsForFlushedValues)
{
    StoreFixture f;
    for (uint64_t k = 1; k <= 16; ++k) f.store.Put(k, 4096, nullptr);
    f.sim.Run();
    for (uint32_t s = 0; s < f.store.slice_count(); ++s) {
        f.store.slice(s).Flush();
    }
    f.sim.Run();

    const util::TimeNs t0 = f.sim.Now();
    uint64_t bytes = 0;
    bool ok = false;
    f.store.Scan(1, 16, [&](const ScanResult &r) {
        ok = r.ok;
        bytes = r.scanned_bytes;
    });
    f.sim.Run();
    EXPECT_TRUE(ok);
    EXPECT_EQ(bytes, 16u * 4096u);
    // Flushed values come off the device: simulated time must pass.
    EXPECT_GT(f.sim.Now(), t0);
}

TEST(TableView, RowsRoundTrip)
{
    StoreFixture f;
    TableView table(f.store, "webpages");
    table.PutRow(123, 2048, nullptr);
    f.sim.Run();
    GetResult result;
    table.GetRow(123, [&](const GetResult &r) { result = r; });
    f.sim.Run();
    EXPECT_TRUE(result.found);
    EXPECT_EQ(result.value_size, 2048u);

    // A different table does not see the row.
    TableView other(f.store, "images");
    GetResult miss;
    miss.found = true;
    other.GetRow(123, [&](const GetResult &r) { miss = r; });
    f.sim.Run();
    EXPECT_FALSE(miss.found);
}

TEST(FsView, FilesSegmentAndReassemble)
{
    StoreFixture f;
    FsView fs(f.store, /*segment_bytes=*/256 * 1024);
    const uint64_t size = 1000 * 1024;  // 3.9 segments -> 4.
    EXPECT_EQ(fs.SegmentCount(size), 4u);

    bool put_ok = false;
    fs.PutFile("/data/part-0001", size, [&](bool ok) { put_ok = ok; });
    f.sim.Run();
    EXPECT_TRUE(put_ok);

    bool get_ok = false;
    uint64_t got_bytes = 0;
    fs.GetFile("/data/part-0001", size, [&](bool ok, uint64_t bytes) {
        get_ok = ok;
        got_bytes = bytes;
    });
    f.sim.Run();
    EXPECT_TRUE(get_ok);
    EXPECT_EQ(got_bytes, size);
}

}  // namespace
}  // namespace sdf::kv
