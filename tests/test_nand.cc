/**
 * @file
 * Unit tests for the NAND flash substrate: geometry, state machine,
 * timing composition, payload storage, error injection, and wear-out.
 */
#include <gtest/gtest.h>

#include "nand/channel.h"
#include "nand/flash_array.h"
#include "nand/geometry.h"
#include "nand/timing.h"
#include "sim/simulator.h"
#include "util/fingerprint.h"

namespace sdf::nand {
namespace {

Channel
MakeChannel(sim::Simulator &sim, bool payloads = false,
            const ErrorModel &errors = {})
{
    return Channel(sim, TinyTestGeometry(), FastTestTiming(), errors,
                   util::Rng(1), payloads, 40);
}

// ---------------------------------------------------------------------------
// Geometry
// ---------------------------------------------------------------------------

TEST(Geometry, BaiduSdfMatchesTable3)
{
    const Geometry g = BaiduSdfGeometry();
    EXPECT_EQ(g.channels, 44u);
    EXPECT_EQ(g.PlanesPerChannel(), 4u);
    EXPECT_EQ(g.page_size, 8u * util::kKiB);
    EXPECT_EQ(g.BlockBytes(), 2 * util::kMiB);
    // 16 GiB per channel, 704 GiB raw.
    EXPECT_EQ(g.ChannelBytes(), 16 * util::kGiB);
    EXPECT_EQ(g.TotalBytes(), 704 * util::kGiB);
}

TEST(Geometry, DerivedQuantitiesConsistent)
{
    const Geometry g = TinyTestGeometry();
    EXPECT_EQ(g.TotalBlocks(),
              uint64_t{g.channels} * g.PlanesPerChannel() * g.blocks_per_plane);
    EXPECT_EQ(g.TotalBytes(), g.TotalPages() * g.page_size);
}

TEST(Geometry, FlatIndexRoundTrips)
{
    const Geometry g = TinyTestGeometry();
    for (uint32_t pl = 0; pl < g.PlanesPerChannel(); ++pl) {
        for (uint32_t b = 0; b < g.blocks_per_plane; ++b) {
            const BlockAddr a{pl, b};
            EXPECT_EQ(BlockFromFlat(g, FlatBlockIndex(g, a)), a);
        }
    }
}

// ---------------------------------------------------------------------------
// Channel state machine
// ---------------------------------------------------------------------------

TEST(Channel, ProgramRequiresSequentialPages)
{
    sim::Simulator sim;
    Channel ch = MakeChannel(sim);
    OpStatus got = OpStatus::kOk;
    ch.ProgramPage(PageAddr{0, 0, 1}, [&](OpStatus s) { got = s; });
    sim.Run();
    EXPECT_EQ(got, OpStatus::kWriteSequenceError);
}

TEST(Channel, ProgramThenRewriteFails)
{
    sim::Simulator sim;
    Channel ch = MakeChannel(sim);
    ch.ProgramPage(PageAddr{0, 0, 0}, nullptr);
    OpStatus got = OpStatus::kOk;
    ch.ProgramPage(PageAddr{0, 0, 0}, [&](OpStatus s) { got = s; });
    sim.Run();
    EXPECT_EQ(got, OpStatus::kWriteNotErased);
}

TEST(Channel, FullBlockRejectsProgramUntilErase)
{
    sim::Simulator sim;
    Channel ch = MakeChannel(sim);
    const Geometry g = ch.geometry();
    for (uint32_t p = 0; p < g.pages_per_block; ++p)
        ch.ProgramPage(PageAddr{0, 0, p}, nullptr);
    OpStatus got = OpStatus::kOk;
    ch.ProgramPage(PageAddr{0, 0, 0}, [&](OpStatus s) { got = s; });
    sim.Run();
    EXPECT_EQ(got, OpStatus::kWriteNotErased);
    EXPECT_EQ(ch.block_meta(BlockAddr{0, 0}).state, BlockState::kFull);

    ch.EraseBlock(BlockAddr{0, 0}, nullptr);
    got = OpStatus::kBadBlock;
    ch.ProgramPage(PageAddr{0, 0, 0}, [&](OpStatus s) { got = s; });
    sim.Run();
    EXPECT_EQ(got, OpStatus::kOk);
}

TEST(Channel, EraseIncrementsEraseCount)
{
    sim::Simulator sim;
    Channel ch = MakeChannel(sim);
    for (int i = 0; i < 5; ++i) ch.EraseBlock(BlockAddr{1, 2}, nullptr);
    sim.Run();
    EXPECT_EQ(ch.block_meta(BlockAddr{1, 2}).erase_count, 5u);
}

TEST(Channel, ReadOfErasedPageReportsErased)
{
    sim::Simulator sim;
    Channel ch = MakeChannel(sim, /*payloads=*/true);
    OpStatus got = OpStatus::kOk;
    std::vector<uint8_t> out;
    ch.ReadPage(PageAddr{0, 0, 0}, [&](OpStatus s) { got = s; }, &out);
    sim.Run();
    EXPECT_EQ(got, OpStatus::kOkErased);
    ASSERT_EQ(out.size(), ch.geometry().page_size);
    EXPECT_EQ(out[0], 0xFF);
}

TEST(Channel, OutOfRangeAddressesRejected)
{
    sim::Simulator sim;
    Channel ch = MakeChannel(sim);
    const Geometry g = ch.geometry();
    OpStatus got = OpStatus::kOk;
    ch.ReadPage(PageAddr{g.PlanesPerChannel(), 0, 0},
                [&](OpStatus s) { got = s; });
    sim.Run();
    EXPECT_EQ(got, OpStatus::kOutOfRange);
    got = OpStatus::kOk;
    ch.EraseBlock(BlockAddr{0, g.blocks_per_plane}, [&](OpStatus s) { got = s; });
    sim.Run();
    EXPECT_EQ(got, OpStatus::kOutOfRange);
}

TEST(Channel, BadBlockRejectsEverything)
{
    sim::Simulator sim;
    Channel ch = MakeChannel(sim);
    ch.MarkBad(BlockAddr{0, 3});
    OpStatus r = OpStatus::kOk, w = OpStatus::kOk, e = OpStatus::kOk;
    ch.ReadPage(PageAddr{0, 3, 0}, [&](OpStatus s) { r = s; });
    ch.ProgramPage(PageAddr{0, 3, 0}, [&](OpStatus s) { w = s; });
    ch.EraseBlock(BlockAddr{0, 3}, [&](OpStatus s) { e = s; });
    sim.Run();
    EXPECT_EQ(r, OpStatus::kBadBlock);
    EXPECT_EQ(w, OpStatus::kBadBlock);
    EXPECT_EQ(e, OpStatus::kBadBlock);
}

TEST(Channel, PayloadRoundTrips)
{
    sim::Simulator sim;
    Channel ch = MakeChannel(sim, /*payloads=*/true);
    const auto payload =
        util::MakeDeterministicPayload(ch.geometry().page_size, 99);
    ch.ProgramPage(PageAddr{1, 1, 0}, nullptr, payload.data());
    std::vector<uint8_t> out;
    ch.ReadPage(PageAddr{1, 1, 0}, nullptr, &out);
    sim.Run();
    EXPECT_EQ(out, payload);
}

TEST(Channel, EraseDropsPayloads)
{
    sim::Simulator sim;
    Channel ch = MakeChannel(sim, /*payloads=*/true);
    const auto payload =
        util::MakeDeterministicPayload(ch.geometry().page_size, 5);
    ch.ProgramPage(PageAddr{0, 0, 0}, nullptr, payload.data());
    ch.EraseBlock(BlockAddr{0, 0}, nullptr);
    std::vector<uint8_t> out;
    OpStatus got = OpStatus::kOk;
    ch.ReadPage(PageAddr{0, 0, 0}, [&](OpStatus s) { got = s; }, &out);
    sim.Run();
    EXPECT_EQ(got, OpStatus::kOkErased);
    EXPECT_EQ(out[0], 0xFF);
}

TEST(Channel, DebugSetProgrammedBypassesTiming)
{
    sim::Simulator sim;
    Channel ch = MakeChannel(sim);
    ch.DebugSetProgrammed(BlockAddr{0, 0}, ch.geometry().pages_per_block);
    EXPECT_EQ(ch.block_meta(BlockAddr{0, 0}).state, BlockState::kFull);
    EXPECT_EQ(sim.Now(), 0);
    EXPECT_FALSE(ch.Busy());
}

// ---------------------------------------------------------------------------
// Timing composition
// ---------------------------------------------------------------------------

TEST(ChannelTiming, ReadLatencyIsArrayPlusBus)
{
    sim::Simulator sim;
    Geometry g = TinyTestGeometry();
    TimingSpec t;
    t.read_page = util::UsToNs(60);
    t.program_page = util::UsToNs(1400);
    t.erase_block = util::MsToNs(3);
    t.bus_bytes_per_sec = 40e6;
    t.bus_cmd_overhead = util::UsToNs(11);
    g.page_size = 8 * util::kKiB;
    Channel ch(sim, g, t, ErrorModel{}, util::Rng(1), false, 40);

    util::TimeNs done_at = 0;
    ch.ReadPage(PageAddr{0, 0, 0}, [&](OpStatus) { done_at = sim.Now(); });
    sim.Run();
    // 60 us array read + 11 us command + 8192 B / 40 MB/s = 204.8 us.
    EXPECT_EQ(done_at, util::UsToNs(60) + util::UsToNs(11) +
                           util::TransferTimeNs(8192, 40e6));
}

TEST(ChannelTiming, ReadsFromTwoPlanesPipelineOnBus)
{
    sim::Simulator sim;
    Geometry g = TinyTestGeometry();
    TimingSpec t = FastTestTiming();
    t.read_page = util::UsToNs(100);
    t.bus_bytes_per_sec = 0;  // Infinite bus: isolate array reads.
    t.bus_cmd_overhead = util::UsToNs(1);
    Channel ch(sim, g, t, ErrorModel{}, util::Rng(1), false, 40);

    int completed = 0;
    ch.ReadPage(PageAddr{0, 0, 0}, [&](OpStatus) { ++completed; });
    ch.ReadPage(PageAddr{1, 0, 0}, [&](OpStatus) { ++completed; });
    sim.Run();
    EXPECT_EQ(completed, 2);
    // Both planes read in parallel: total ~101-102 us, not 200+.
    EXPECT_LT(sim.Now(), util::UsToNs(110));
}

TEST(ChannelTiming, ProgramsOnSamePlaneSerialize)
{
    sim::Simulator sim;
    Geometry g = TinyTestGeometry();
    TimingSpec t = FastTestTiming();
    t.program_page = util::UsToNs(100);
    t.bus_bytes_per_sec = 0;
    t.bus_cmd_overhead = 0;
    Channel ch(sim, g, t, ErrorModel{}, util::Rng(1), false, 40);

    ch.ProgramPage(PageAddr{0, 0, 0}, nullptr);
    ch.ProgramPage(PageAddr{0, 0, 1}, nullptr);
    sim.Run();
    EXPECT_GE(sim.Now(), util::UsToNs(200));
}

// ---------------------------------------------------------------------------
// Error model
// ---------------------------------------------------------------------------

TEST(ErrorModel, DisabledProducesNoErrors)
{
    ErrorModel m;
    util::Rng rng(1);
    EXPECT_EQ(m.SampleBitErrors(rng, 8192, 100000), 0u);
    EXPECT_FALSE(m.SampleWearOut(rng, 100000));
}

TEST(ErrorModel, RberGrowsWithWear)
{
    ErrorModel m;
    m.enabled = true;
    EXPECT_GT(m.RberAt(3000), m.RberAt(0));
    EXPECT_GT(m.RberAt(6000), m.RberAt(3000));
}

TEST(ErrorModel, WornBlocksEventuallyFail)
{
    ErrorModel m;
    m.enabled = true;
    m.endurance_cycles = 100;
    util::Rng rng(1);
    int failures = 0;
    for (int i = 0; i < 10000; ++i) {
        if (m.SampleWearOut(rng, 300)) ++failures;
    }
    EXPECT_GT(failures, 0);
    // Below endurance never fails.
    for (int i = 0; i < 1000; ++i) EXPECT_FALSE(m.SampleWearOut(rng, 99));
}

TEST(Channel, UncorrectableReadsReported)
{
    sim::Simulator sim;
    ErrorModel errors;
    errors.enabled = true;
    errors.base_rber = 1e-2;  // Extreme: guarantees > 40 bit errors/page.
    Channel ch(sim, TinyTestGeometry(), FastTestTiming(), errors,
               util::Rng(1), false, 40);
    ch.ProgramPage(PageAddr{0, 0, 0}, nullptr);
    OpStatus got = OpStatus::kOk;
    ch.ReadPage(PageAddr{0, 0, 0}, [&](OpStatus s) { got = s; });
    sim.Run();
    EXPECT_EQ(got, OpStatus::kReadUncorrectable);
    EXPECT_EQ(ch.stats().uncorrectable_reads, 1u);
}

TEST(Channel, WearOutMarksBlockBad)
{
    sim::Simulator sim;
    ErrorModel errors;
    errors.enabled = true;
    errors.endurance_cycles = 1;
    errors.wearout_fail_scale = 1.0;  // Fail promptly past endurance.
    Channel ch(sim, TinyTestGeometry(), FastTestTiming(), errors,
               util::Rng(1), false, 40);
    OpStatus last = OpStatus::kOk;
    for (int i = 0; i < 50 && last == OpStatus::kOk; ++i) {
        ch.EraseBlock(BlockAddr{0, 0}, [&](OpStatus s) { last = s; });
        sim.Run();
    }
    EXPECT_EQ(last, OpStatus::kWornOut);
    EXPECT_TRUE(ch.block_meta(BlockAddr{0, 0}).bad);
    EXPECT_EQ(ch.stats().blocks_gone_bad, 1u);
}

// ---------------------------------------------------------------------------
// FlashArray
// ---------------------------------------------------------------------------

TEST(FlashArray, RawBandwidthsMatchPaper)
{
    sim::Simulator sim;
    FlashArrayConfig cfg;
    cfg.geometry = BaiduSdfGeometry();
    cfg.timing = Micron25nmMlcTiming();
    FlashArray array(sim, cfg);
    // §3.2: aggregate raw read 1.67 GB/s, raw write 1.01 GB/s.
    EXPECT_NEAR(array.RawReadBandwidth() / 1e9, 1.67, 0.05);
    EXPECT_NEAR(array.RawWriteBandwidth() / 1e9, 1.01, 0.05);
}

TEST(FlashArray, FactoryBadBlocksInjected)
{
    sim::Simulator sim;
    FlashArrayConfig cfg;
    cfg.geometry = TinyTestGeometry();
    cfg.timing = FastTestTiming();
    cfg.factory_bad_per_mille = 200;  // Exaggerated for the test.
    cfg.seed = 3;
    FlashArray array(sim, cfg);
    uint32_t bad = 0;
    const Geometry &g = array.geometry();
    for (uint32_t c = 0; c < g.channels; ++c) {
        for (uint32_t pl = 0; pl < g.PlanesPerChannel(); ++pl) {
            for (uint32_t b = 0; b < g.blocks_per_plane; ++b) {
                if (array.channel(c).block_meta(BlockAddr{pl, b}).bad) ++bad;
            }
        }
    }
    EXPECT_GT(bad, 0u);
    EXPECT_LT(bad, g.TotalBlocks() / 2);
}

TEST(FlashArray, StatsAggregateAcrossChannels)
{
    sim::Simulator sim;
    FlashArrayConfig cfg;
    cfg.geometry = TinyTestGeometry();
    cfg.timing = FastTestTiming();
    FlashArray array(sim, cfg);
    array.channel(0).ProgramPage(PageAddr{0, 0, 0}, nullptr);
    array.channel(1).ProgramPage(PageAddr{0, 0, 0}, nullptr);
    array.channel(2).EraseBlock(BlockAddr{0, 0}, nullptr);
    sim.Run();
    const ChannelStats total = array.TotalStats();
    EXPECT_EQ(total.programs, 2u);
    EXPECT_EQ(total.erases, 1u);
}

}  // namespace
}  // namespace sdf::nand
