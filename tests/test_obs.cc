/**
 * @file
 * Tests for the observability subsystem (obs/): the metrics registry, the
 * per-request stage spans and their additivity invariant, the trace sink's
 * JSON output, and the determinism of the structured exporters — including
 * an end-to-end run on the SDF device verifying that the exported
 * per-stage latency means sum to the end-to-end mean.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>

#include "host/io_stack.h"
#include "obs/hub.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/trace.h"
#include "sdf/sdf_device.h"
#include "sim/simulator.h"
#include "util/histogram.h"
#include "workload/raw_device.h"

namespace sdf {
namespace {

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

TEST(MetricsRegistry, RegisterSnapshotUnregister)
{
    obs::MetricsRegistry reg;
    uint64_t pages = 0;
    double util = 0.25;
    util::Histogram hist;
    hist.Add(10);
    hist.Add(30);

    reg.RegisterCounter("nand.ch00.page_reads", &pages);
    reg.RegisterGauge("nand.ch00.bus_utilization", [&]() { return util; });
    reg.RegisterHistogram("sdf.recovery_latency_ns", [&]() { return &hist; });
    EXPECT_EQ(reg.size(), 3u);

    pages = 7;
    const auto snap = reg.Take();
    EXPECT_EQ(snap.counters.at("nand.ch00.page_reads"), 7u);
    EXPECT_DOUBLE_EQ(snap.gauges.at("nand.ch00.bus_utilization"), 0.25);
    EXPECT_EQ(snap.histograms.at("sdf.recovery_latency_ns").count, 2u);
    EXPECT_EQ(snap.histograms.at("sdf.recovery_latency_ns").min, 10);
    EXPECT_EQ(snap.histograms.at("sdf.recovery_latency_ns").max, 30);

    // UnregisterPrefix removes the prefix and everything under "prefix.".
    reg.UnregisterPrefix("nand.ch00");
    EXPECT_EQ(reg.size(), 1u);
    reg.UnregisterPrefix("sdf");
    EXPECT_EQ(reg.size(), 0u);
}

TEST(MetricsRegistry, UnregisterPrefixIsSegmentAware)
{
    obs::MetricsRegistry reg;
    uint64_t a = 1, b = 2;
    reg.RegisterCounter("kv.slice.puts", &a);
    reg.RegisterCounter("kv.slicex.puts", &b);
    reg.UnregisterPrefix("kv.slice");
    // "kv.slicex.puts" does not live under "kv.slice." and must survive.
    EXPECT_EQ(reg.size(), 1u);
    EXPECT_EQ(reg.Take().counters.count("kv.slicex.puts"), 1u);
}

TEST(MetricsRegistry, UniquePrefixDisambiguatesDeterministically)
{
    obs::MetricsRegistry reg;
    EXPECT_EQ(reg.UniquePrefix("kv.slice"), "kv.slice");
    EXPECT_EQ(reg.UniquePrefix("kv.slice"), "kv.slice.2");
    EXPECT_EQ(reg.UniquePrefix("kv.slice"), "kv.slice.3");
    EXPECT_EQ(reg.UniquePrefix("net"), "net");
}

// ---------------------------------------------------------------------------
// IoSpan / StageCollector
// ---------------------------------------------------------------------------

TEST(IoSpan, SegmentsTileTheLifetimeExactly)
{
    obs::IoSpan span;
    span.Start(100);
    span.Enter(obs::Stage::kQueue, 150);         // host_issue: 50
    span.Enter(obs::Stage::kFlashOp, 400);       // queue: 250
    span.Enter(obs::Stage::kInterrupt, 1000);    // flash_op: 600
    span.Enter(obs::Stage::kHostComplete, 1300); // interrupt: 300
    span.Finish(1500);                           // host_complete: 200

    EXPECT_EQ(span.stage_ns(obs::Stage::kHostIssue), 50);
    EXPECT_EQ(span.stage_ns(obs::Stage::kQueue), 250);
    EXPECT_EQ(span.stage_ns(obs::Stage::kFlashOp), 600);
    EXPECT_EQ(span.stage_ns(obs::Stage::kInterrupt), 300);
    EXPECT_EQ(span.stage_ns(obs::Stage::kHostComplete), 200);
    EXPECT_EQ(span.total_ns(), 1400);

    util::TimeNs sum = 0;
    for (size_t s = 0; s < obs::kStageCount; ++s) {
        sum += span.stage_ns(static_cast<obs::Stage>(s));
    }
    EXPECT_EQ(sum, span.total_ns());
}

TEST(IoSpan, OutOfOrderTimestampsAreClampedMonotonic)
{
    obs::IoSpan span;
    span.Start(1000);
    span.Enter(obs::Stage::kQueue, 2000);
    span.Enter(obs::Stage::kFlashOp, 1500);  // Late marker: clamped to 2000.
    span.Finish(3000);
    EXPECT_EQ(span.stage_ns(obs::Stage::kQueue), 0);
    EXPECT_EQ(span.stage_ns(obs::Stage::kFlashOp), 1000);
    EXPECT_EQ(span.total_ns(), 2000);
}

TEST(IoSpan, ReusableAfterFinish)
{
    obs::IoSpan span;
    span.Start(0);
    span.Finish(100);
    EXPECT_TRUE(span.finished());
    span.Enter(obs::Stage::kQueue, 200);  // Ignored once finished.
    EXPECT_EQ(span.total_ns(), 100);
    span.Start(1000);
    EXPECT_FALSE(span.finished());
    span.Finish(1250);
    EXPECT_EQ(span.total_ns(), 250);
    EXPECT_EQ(span.stage_ns(obs::Stage::kHostIssue), 250);
}

TEST(StageCollector, AdditivitySurvivesAggregation)
{
    obs::StageCollector coll;
    for (int i = 1; i <= 10; ++i) {
        obs::IoSpan span;
        span.Start(0);
        span.Enter(obs::Stage::kFlashOp, i * 10);
        span.Finish(i * 10 + 5);
        coll.Record("read", span);
    }
    const auto &s = coll.ops().at("read");
    EXPECT_EQ(s.count, 10u);
    double stage_mean_sum = 0;
    for (size_t st = 0; st < obs::kStageCount; ++st) {
        stage_mean_sum += s.StageMeanNs(static_cast<obs::Stage>(st));
    }
    EXPECT_DOUBLE_EQ(stage_mean_sum, s.TotalMeanNs());
    EXPECT_EQ(s.end_to_end.count(), 10u);
}

// ---------------------------------------------------------------------------
// TraceSink
// ---------------------------------------------------------------------------

TEST(TraceSink, EmitsWellFormedTrackedEvents)
{
    obs::TraceSink sink;
    const int32_t bus = sink.RegisterTrack("flash", "ch00.bus");
    const int32_t p0 = sink.RegisterTrack("flash", "ch00.p0");
    const int32_t req = sink.RegisterTrack("host", "req.ch00");
    EXPECT_EQ(sink.RegisterTrack("flash", "ch00.bus"), bus);  // Idempotent.
    EXPECT_EQ(sink.tracks(), 3u);
    EXPECT_NE(bus, p0);

    sink.Complete(p0, "tR", 1000, 60000);
    sink.Complete(bus, "xfer", 61000, 21500);
    sink.Complete(req, "read", 0, 90123);
    EXPECT_EQ(sink.events(), 3u);

    const std::string json = sink.ToJson();
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"process_name\""), std::string::npos);
    EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
    EXPECT_NE(json.find("\"ch00.bus\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    // 90123 ns -> 90.123 us in the exported microsecond timebase.
    EXPECT_NE(json.find("\"dur\":90.123"), std::string::npos);
    // Balanced braces/brackets (cheap well-formedness check; the full
    // parse happens in tools/validate_stats.py during scripts/check.sh).
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
    EXPECT_EQ(std::count(json.begin(), json.end(), '['),
              std::count(json.begin(), json.end(), ']'));
}

TEST(TraceSink, CapCountsDroppedEvents)
{
    obs::TraceSink sink(2);
    const int32_t t = sink.RegisterTrack("flash", "ch00.bus");
    sink.Complete(t, "a", 0, 1);
    sink.Complete(t, "b", 1, 1);
    sink.Complete(t, "c", 2, 1);
    EXPECT_EQ(sink.events(), 2u);
    EXPECT_EQ(sink.dropped(), 1u);
}

TEST(TraceSink, ExportReportsDroppedEvents)
{
    // A capped trace must say so in the document itself, not only on
    // stderr: a tool reading the file sees how much is missing.
    obs::TraceSink sink(2);
    const int32_t t = sink.RegisterTrack("flash", "ch00.bus");
    sink.Complete(t, "a", 0, 1);
    sink.Complete(t, "b", 1, 1);
    EXPECT_NE(sink.ToJson().find("\"dropped_events\":0"),
              std::string::npos);
    sink.Complete(t, "c", 2, 1);
    sink.Complete(t, "d", 3, 1);
    EXPECT_NE(sink.ToJson().find("\"dropped_events\":2"),
              std::string::npos);
}

TEST(TraceSink, TraceIdsExportAsFlowArgs)
{
    obs::TraceSink sink;
    const int32_t t = sink.RegisterTrack("cluster", "client");
    sink.Complete(t, "get", 0, 1000, /*trace_id=*/42);
    sink.Complete(t, "untraced", 2000, 1000);  // No args block.
    const std::string json = sink.ToJson();
    EXPECT_NE(json.find("\"args\":{\"trace\":42}"), std::string::npos);
    EXPECT_EQ(json.find("\"args\":{\"trace\":0}"), std::string::npos);
}

TEST(MetricsRegistry, DuplicatePathIsRefusedKeepingFirst)
{
#ifdef NDEBUG
    obs::MetricsRegistry reg;
    uint64_t first = 7, second = 99;
    EXPECT_EQ(reg.RegisterCounter("dup.count", &first),
              obs::RegisterStatus::kOk);
    EXPECT_EQ(reg.RegisterCounter("dup.count", &second),
              obs::RegisterStatus::kDuplicatePath);
    EXPECT_EQ(reg.duplicates_refused(), 1u);
    // The first registration stays live; the usurper is ignored.
    EXPECT_EQ(reg.Take().counters.at("dup.count"), 7u);
    // A retired path may be reused (scoped benches rebuild components).
    reg.UnregisterPrefix("dup");
    EXPECT_EQ(reg.RegisterCounter("dup.count", &second),
              obs::RegisterStatus::kOk);
    EXPECT_EQ(reg.Take().counters.at("dup.count"), 99u);
#else
    GTEST_SKIP() << "debug builds abort on duplicate registration";
#endif
}

// ---------------------------------------------------------------------------
// End-to-end: instrumented SDF run
// ---------------------------------------------------------------------------

struct SdfRunOutput
{
    std::string stats_json;
    std::string stats_csv;
    std::string trace_json;
    double stage_mean_sum = 0;
    double e2e_mean = 0;
    uint64_t op_count = 0;
    uint64_t page_reads = 0;
};

/** One short instrumented random-read run; returns the exported docs. */
SdfRunOutput
RunInstrumentedSdf(uint64_t seed)
{
    obs::Hub hub;
    hub.EnableTrace();

    sim::Simulator sim;
    sim.set_hub(&hub);
    core::SdfDevice device(sim, core::BaiduSdfConfig(0.01));
    host::IoStack stack(sim, host::SdfUserStackSpec());
    workload::PreconditionSdf(device);

    workload::RawRunConfig run;
    run.warmup = util::MsToNs(20);
    run.duration = util::MsToNs(100);
    run.seed = seed;
    workload::RunSdfRandomReads(sim, device, stack, 8, 8 * util::kKiB, run);

    SdfRunOutput out;
    const obs::MetaMap meta{{"device", "sdf"}, {"workload", "randread"}};
    const obs::DerivedMap derived{{"result.mbps", 1.0}};
    out.stats_json = obs::StatsJson(hub, meta, derived);
    out.stats_csv = obs::StatsCsv(hub, meta, derived);
    out.trace_json = hub.trace()->ToJson();

    const auto &ops = hub.stages().ops();
    EXPECT_EQ(ops.count("read"), 1u);
    const auto &s = ops.at("read");
    out.op_count = s.count;
    out.e2e_mean = s.TotalMeanNs();
    for (size_t st = 0; st < obs::kStageCount; ++st) {
        out.stage_mean_sum += s.StageMeanNs(static_cast<obs::Stage>(st));
    }
    out.page_reads = hub.metrics().Take().counters.at("nand.ch00.page_reads");
    return out;
}

TEST(ObsEndToEnd, StageMeansSumToEndToEndMean)
{
    const SdfRunOutput out = RunInstrumentedSdf(42);
    ASSERT_GT(out.op_count, 0u);
    ASSERT_GT(out.e2e_mean, 0.0);
    // Acceptance bound is 1%; the cut-point construction makes it exact
    // up to floating-point rounding.
    EXPECT_NEAR(out.stage_mean_sum / out.e2e_mean, 1.0, 1e-9);
    EXPECT_GT(out.page_reads, 0u);
}

TEST(ObsEndToEnd, ExportsContainEveryLayer)
{
    const SdfRunOutput out = RunInstrumentedSdf(42);
    for (const char *needle :
         {"\"nand.ch00.page_reads\"", "\"sdf.page_reads\"",
          "\"link.to_host_bytes\"",
          "\"irq.completions\"", "\"stages\"", "\"end_to_end_ns_mean\"",
          "\"stage_ns_mean\""}) {
        EXPECT_NE(out.stats_json.find(needle), std::string::npos) << needle;
    }
    EXPECT_NE(out.stats_csv.find("nand.ch00.page_reads,"), std::string::npos);
    EXPECT_NE(out.trace_json.find("\"ch00.bus\""), std::string::npos);
    EXPECT_NE(out.trace_json.find("\"req.ch00\""), std::string::npos);
}

TEST(ObsEndToEnd, SameSeedRunsExportByteIdenticalStats)
{
    const SdfRunOutput a = RunInstrumentedSdf(42);
    const SdfRunOutput b = RunInstrumentedSdf(42);
    EXPECT_EQ(a.stats_json, b.stats_json);
    EXPECT_EQ(a.stats_csv, b.stats_csv);
    EXPECT_EQ(a.trace_json, b.trace_json);

    const SdfRunOutput c = RunInstrumentedSdf(43);
    EXPECT_NE(a.stats_json, c.stats_json);  // The seed actually matters.
}

TEST(ObsEndToEnd, DeviceDestructionUnregistersButRetainsFinalValues)
{
    obs::Hub hub;
    sim::Simulator sim;
    sim.set_hub(&hub);
    {
        core::SdfDevice device(sim, core::BaiduSdfConfig(0.01));
        EXPECT_GT(hub.metrics().size(), 0u);
    }
    // No live sources remain (nothing can read freed memory), but the
    // final values survive so end-of-main exports still see scoped
    // components.
    EXPECT_EQ(hub.metrics().size(), 0u);
    const auto snap = hub.metrics().Take();
    EXPECT_GT(snap.counters.size(), 0u);
    EXPECT_EQ(snap.counters.count("sdf.page_reads"), 1u);
}

TEST(ObsEndToEnd, NoHubInstalledIsInert)
{
    sim::Simulator sim;
    ASSERT_EQ(sim.hub(), nullptr);
    core::SdfDevice device(sim, core::BaiduSdfConfig(0.01));
    host::IoStack stack(sim, host::SdfUserStackSpec());
    workload::PreconditionSdf(device);
    workload::RawRunConfig run;
    run.warmup = util::MsToNs(10);
    run.duration = util::MsToNs(50);
    const auto r =
        workload::RunSdfRandomReads(sim, device, stack, 4, 8 * util::kKiB, run);
    EXPECT_GT(r.operations, 0u);
}

}  // namespace
}  // namespace sdf
