/**
 * @file
 * Property-based and golden-model tests.
 *
 * Each suite drives a component with long randomized operation sequences
 * across a parameter grid and checks invariants against a trivially
 * correct in-memory reference ("golden model"): the KV slice against a
 * std::map, the block layer against an id set, the conventional SSD's
 * mapping bookkeeping against exhaustive recounts, quantiles against
 * sorting, and address striping against a brute-force inverse.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <set>

#include "blocklayer/block_layer.h"
#include "cluster/cluster.h"
#include "ftl/striping.h"
#include "kv/patch_storage.h"
#include "kv/slice.h"
#include "sdf/sdf_device.h"
#include "sim/simulator.h"
#include "ssd/conventional_ssd.h"
#include "ssd/ssd_block_device.h"
#include "util/histogram.h"
#include "util/rng.h"

namespace sdf {
namespace {

// ---------------------------------------------------------------------------
// KV slice vs golden map
// ---------------------------------------------------------------------------

/** Which storage backend hosts the slice under test. */
enum SliceBackend
{
    kOnSdf = 0,        ///< SdfDevice -> BlockLayer -> BlockPatchStorage.
    kOnSsdExtents,     ///< ConventionalSsd -> legacy flat SsdPatchStorage.
    kOnSsdAdapter,     ///< ConventionalSsd -> SsdBlockDevice -> BlockLayer
                       ///< -> BlockPatchStorage (the unified path).
};

class SliceGoldenTest
    : public ::testing::TestWithParam<std::tuple<
          uint32_t /*trigger*/, uint32_t /*levels*/, uint64_t /*seed*/,
          int /*SliceBackend*/>>
{
};

TEST_P(SliceGoldenTest, RandomOpsMatchReferenceMap)
{
    const auto [trigger, levels, seed, backend] = GetParam();

    sim::Simulator sim;
    // The same LSM logic must hold over every storage backend.
    std::unique_ptr<core::SdfDevice> sdf_device;
    std::unique_ptr<ssd::ConventionalSsd> ssd_device;
    std::unique_ptr<ssd::SsdBlockDevice> adapter;
    std::unique_ptr<blocklayer::BlockLayer> layer;
    std::unique_ptr<kv::PatchStorage> storage;
    if (backend == kOnSsdExtents) {
        ssd::ConventionalSsdConfig scfg = ssd::HuaweiGen3Config(0.02);
        scfg.flash.timing = nand::FastTestTiming();
        ssd_device = std::make_unique<ssd::ConventionalSsd>(sim, scfg);
        storage = std::make_unique<kv::SsdPatchStorage>(*ssd_device,
                                                        8 * util::kMiB);
    } else if (backend == kOnSsdAdapter) {
        ssd::ConventionalSsdConfig scfg = ssd::HuaweiGen3Config(0.02);
        scfg.flash.timing = nand::FastTestTiming();
        ssd_device = std::make_unique<ssd::ConventionalSsd>(sim, scfg);
        adapter = std::make_unique<ssd::SsdBlockDevice>(sim, *ssd_device);
        layer = std::make_unique<blocklayer::BlockLayer>(
            sim, *adapter, blocklayer::BlockLayerConfig{});
        storage = std::make_unique<kv::BlockPatchStorage>(*layer);
    } else {
        core::SdfConfig dev_cfg = core::BaiduSdfConfig(0.02);
        dev_cfg.flash.timing = nand::FastTestTiming();
        sdf_device = std::make_unique<core::SdfDevice>(sim, dev_cfg);
        layer = std::make_unique<blocklayer::BlockLayer>(
            sim, *sdf_device, blocklayer::BlockLayerConfig{});
        storage = std::make_unique<kv::BlockPatchStorage>(*layer);
    }
    kv::IdAllocator ids;
    kv::SliceConfig cfg;
    cfg.compaction_trigger = trigger;
    cfg.max_levels = levels;
    kv::Slice slice(sim, *storage, ids, cfg);

    std::map<uint64_t, uint32_t> golden;  // key -> value size
    util::Rng rng(seed);
    const uint64_t key_space = 400;

    for (int op = 0; op < 1200; ++op) {
        const uint64_t key = rng.NextBelow(key_space);
        switch (rng.NextBelow(10)) {
          case 0:
          case 1:  // Delete.
            slice.Delete(key, nullptr);
            golden.erase(key);
            break;
          case 2:  // Forced flush now and then.
            slice.Flush();
            break;
          default: {  // Put.
            const auto size = static_cast<uint32_t>(
                4 * util::kKiB + rng.NextBelow(250 * util::kKiB));
            slice.Put(key, size, nullptr);
            golden[key] = size;
            break;
          }
        }
        if (op % 100 == 99) sim.Run();  // Let flush/compaction drain.
    }
    sim.Run();

    // Every golden key must be found with the right size; every deleted
    // or never-written key must miss.
    for (uint64_t key = 0; key < key_space; ++key) {
        kv::GetResult result;
        bool called = false;
        slice.Get(key, [&](const kv::GetResult &r) {
            result = r;
            called = true;
        });
        sim.Run();
        ASSERT_TRUE(called);
        auto it = golden.find(key);
        if (it == golden.end()) {
            EXPECT_FALSE(result.found) << "phantom key " << key;
        } else {
            ASSERT_TRUE(result.found) << "lost key " << key;
            EXPECT_EQ(result.value_size, it->second) << "stale key " << key;
        }
    }

    // The exercise must actually have exercised the machinery.
    EXPECT_GT(slice.stats().flushes, 0u);
    if (trigger <= 4) {
        EXPECT_GT(slice.stats().compactions, 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SliceGoldenTest,
    ::testing::Values(std::tuple{2u, 2u, 1ull, kOnSdf},
                      std::tuple{3u, 3u, 2ull, kOnSdf},
                      std::tuple{4u, 4u, 3ull, kOnSdf},
                      std::tuple{2u, 4u, 4ull, kOnSdf},
                      std::tuple{6u, 2u, 5ull, kOnSdf},
                      std::tuple{2u, 2u, 6ull, kOnSsdExtents},
                      std::tuple{3u, 3u, 7ull, kOnSsdExtents},
                      std::tuple{6u, 2u, 8ull, kOnSsdExtents},
                      std::tuple{2u, 2u, 6ull, kOnSsdAdapter},
                      std::tuple{3u, 3u, 7ull, kOnSsdAdapter},
                      std::tuple{6u, 2u, 8ull, kOnSsdAdapter}));

// ---------------------------------------------------------------------------
// Block layer vs golden id set
// ---------------------------------------------------------------------------

class BlockLayerGoldenTest
    : public ::testing::TestWithParam<std::tuple<blocklayer::ErasePolicy,
                                                 blocklayer::PlacementPolicy,
                                                 uint64_t>>
{
};

TEST_P(BlockLayerGoldenTest, RandomPutGetDeleteSequence)
{
    const auto [erase_policy, placement, seed] = GetParam();

    sim::Simulator sim;
    core::SdfConfig dev_cfg;
    dev_cfg.flash.geometry = nand::TinyTestGeometry();
    dev_cfg.flash.timing = nand::FastTestTiming();
    dev_cfg.link = controller::UnlimitedLinkSpec();
    dev_cfg.spare_blocks_per_plane = 2;
    core::SdfDevice device(sim, dev_cfg);
    blocklayer::BlockLayerConfig cfg;
    cfg.erase_policy = erase_policy;
    cfg.placement_policy = placement;
    blocklayer::BlockLayer layer(sim, device, cfg);

    std::set<uint64_t> golden;
    util::Rng rng(seed);
    const uint64_t capacity =
        uint64_t{device.channel_count()} * device.units_per_channel();
    uint64_t next_id = 0;

    for (int op = 0; op < 500; ++op) {
        const auto kind = rng.NextBelow(10);
        if (kind < 5 && golden.size() < capacity / 2) {
            const uint64_t id = next_id++;
            layer.Put(id, [&golden, id](bool ok) {
                if (ok) golden.insert(id);
            });
        } else if (kind < 8 && !golden.empty()) {
            // Get a random stored id.
            auto it = golden.begin();
            std::advance(it, static_cast<long>(rng.NextBelow(golden.size())));
            const uint64_t id = *it;
            layer.Get(id, 0, device.read_unit_bytes(), [id](bool ok) {
                EXPECT_TRUE(ok) << "stored id unreadable: " << id;
            });
        } else if (!golden.empty()) {
            auto it = golden.begin();
            std::advance(it, static_cast<long>(rng.NextBelow(golden.size())));
            sim.Run();  // Quiesce in-flight ops before deleting.
            if (layer.Delete(*it)) golden.erase(it);
        }
        if (op % 50 == 49) sim.Run();
    }
    sim.Run();

    // Exactly the golden ids exist.
    for (uint64_t id = 0; id < next_id; ++id) {
        EXPECT_EQ(layer.Exists(id), golden.count(id) != 0) << "id " << id;
    }
    // Accounting: stored + free == capacity.
    EXPECT_EQ(golden.size() + layer.FreeUnits(), capacity);
    // The SDF contract was never violated by the layer.
    EXPECT_EQ(device.stats().contract_violations, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BlockLayerGoldenTest,
    ::testing::Values(
        std::tuple{blocklayer::ErasePolicy::kEraseOnWrite,
                   blocklayer::PlacementPolicy::kIdHash, 11ull},
        std::tuple{blocklayer::ErasePolicy::kBackground,
                   blocklayer::PlacementPolicy::kIdHash, 12ull},
        std::tuple{blocklayer::ErasePolicy::kEraseOnWrite,
                   blocklayer::PlacementPolicy::kLeastLoaded, 13ull},
        std::tuple{blocklayer::ErasePolicy::kBackground,
                   blocklayer::PlacementPolicy::kLeastLoaded, 14ull}));

// ---------------------------------------------------------------------------
// Conventional SSD: bookkeeping invariants under random traffic
// ---------------------------------------------------------------------------

class SsdInvariantTest
    : public ::testing::TestWithParam<std::tuple<double /*op*/, bool /*parity*/,
                                                 uint64_t /*seed*/>>
{
};

TEST_P(SsdInvariantTest, MappingStaysConsistentUnderChurn)
{
    const auto [op_ratio, parity, seed] = GetParam();

    sim::Simulator sim;
    ssd::ConventionalSsdConfig cfg;
    cfg.flash.geometry = nand::TinyTestGeometry();
    cfg.flash.geometry.channels = 4;
    cfg.flash.geometry.blocks_per_plane = 24;
    cfg.flash.timing = nand::FastTestTiming();
    cfg.link = controller::UnlimitedLinkSpec();
    cfg.op_ratio = op_ratio;
    cfg.parity = parity;
    cfg.stripe_bytes = cfg.flash.geometry.page_size;
    cfg.dram_cache_bytes = 256 * util::kKiB;
    cfg.gc_low_watermark = 4;
    cfg.gc_high_watermark = 8;
    cfg.fw_cost_per_read_request = 0;
    cfg.fw_cost_per_write_request = 0;
    cfg.fw_cost_read_page = util::UsToNs(1);
    cfg.fw_cost_write_page = util::UsToNs(1);
    ssd::ConventionalSsd device(sim, cfg);

    const uint32_t page = cfg.flash.geometry.page_size;
    const uint64_t pages = device.user_capacity() / page;
    util::Rng rng(seed);
    device.PreconditionFill(0.8);

    int completed = 0, issued = 0;
    for (int op = 0; op < 3000; ++op) {
        ++issued;
        const uint64_t p = rng.NextBelow(pages);
        if (rng.NextBool(0.7)) {
            device.Write(p * page, page, [&](bool ok) {
                completed += ok;
            });
        } else {
            device.Read(p * page, page, [&](bool ok) {
                completed += ok;
            });
        }
        if (op % 200 == 199) sim.Run();
    }
    sim.Run();
    EXPECT_EQ(completed, issued);

    // GC engaged and no channel deadlocked.
    EXPECT_GT(device.stats().gc_erases, 0u);
    EXPECT_EQ(device.CacheUsed(), 0u);
    for (uint32_t c = 0; c < cfg.flash.geometry.channels; ++c) {
        EXPECT_GT(device.FreeBlocks(c), 0u);
    }
    // WA must be finite and >= 1 under churn.
    EXPECT_GE(device.stats().WriteAmplification(), 1.0);
    EXPECT_LT(device.stats().WriteAmplification(), 64.0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SsdInvariantTest,
    ::testing::Values(std::tuple{0.05, false, 21ull},
                      std::tuple{0.25, false, 22ull},
                      std::tuple{0.25, true, 23ull},
                      std::tuple{0.45, true, 24ull}));

// ---------------------------------------------------------------------------
// SDF device: random op soup never corrupts unit states
// ---------------------------------------------------------------------------

class SdfFuzzTest : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(SdfFuzzTest, RandomOpsKeepStateMachineConsistent)
{
    sim::Simulator sim;
    core::SdfConfig cfg;
    cfg.flash.geometry = nand::TinyTestGeometry();
    cfg.flash.timing = nand::FastTestTiming();
    cfg.link = controller::UnlimitedLinkSpec();
    cfg.spare_blocks_per_plane = 2;
    core::SdfDevice device(sim, cfg);

    util::Rng rng(GetParam());
    // Shadow state machine.
    std::vector<std::vector<core::UnitState>> shadow(
        device.channel_count(),
        std::vector<core::UnitState>(device.units_per_channel(),
                                     core::UnitState::kUnwritten));

    for (int op = 0; op < 2000; ++op) {
        const auto ch = static_cast<uint32_t>(
            rng.NextBelow(device.channel_count()));
        const auto unit = static_cast<uint32_t>(
            rng.NextBelow(device.units_per_channel()));
        core::UnitState &s = shadow[ch][unit];
        switch (rng.NextBelow(3)) {
          case 0:
            device.EraseUnit(ch, unit, nullptr);
            s = core::UnitState::kErased;
            break;
          case 1: {
            const bool legal = s == core::UnitState::kErased;
            device.WriteUnit(ch, unit, [legal](bool ok) {
                EXPECT_EQ(ok, legal);
            });
            if (legal) s = core::UnitState::kWritten;
            break;
          }
          default:
            device.Read(ch, unit, 0, device.read_unit_bytes(),
                        [](bool ok) { EXPECT_TRUE(ok); });
            break;
        }
        // Ops on the same unit are only well-ordered if we quiesce; do so
        // frequently enough to keep the shadow model valid.
        sim.Run();
        ASSERT_EQ(device.unit_state(ch, unit), s)
            << "ch " << ch << " unit " << unit << " op " << op;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SdfFuzzTest,
                         ::testing::Values(31ull, 32ull, 33ull, 34ull));

// ---------------------------------------------------------------------------
// Histogram quantiles vs sorted reference
// ---------------------------------------------------------------------------

class HistogramQuantileTest : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(HistogramQuantileTest, QuantilesWithinBucketError)
{
    util::Rng rng(GetParam());
    util::Histogram h;
    std::vector<int64_t> reference;
    for (int i = 0; i < 20000; ++i) {
        // Log-uniform values spanning decades 3-6 (away from the dense
        // small-integer buckets where ties distort percentile defs).
        const double mag = 3.0 + rng.NextDouble() * 3.0;
        const auto v = static_cast<int64_t>(std::pow(10.0, mag));
        h.Add(v);
        reference.push_back(v);
    }
    std::sort(reference.begin(), reference.end());
    for (double q : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
        const auto exact = static_cast<double>(
            reference[static_cast<size_t>(q * (reference.size() - 1))]);
        const double approx = h.Quantile(q);
        // Geometric buckets: <= ~7 % relative error.
        EXPECT_NEAR(approx / exact, 1.0, 0.08) << "q=" << q;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HistogramQuantileTest,
                         ::testing::Values(41ull, 42ull, 43ull));

// ---------------------------------------------------------------------------
// Striping: bijection between flat space and (channel, offset)
// ---------------------------------------------------------------------------

class StripingBijectionTest
    : public ::testing::TestWithParam<std::pair<uint32_t, uint32_t>>
{
};

TEST_P(StripingBijectionTest, NoTwoBytesCollide)
{
    const auto [channels, stripe] = GetParam();
    ftl::StripingLayout layout(channels, stripe);
    // Walk a window of the flat space; (channel, channel_offset) must be
    // unique and channel offsets dense per channel.
    std::map<std::pair<uint32_t, uint64_t>, uint64_t> seen;
    const uint64_t window = uint64_t{channels} * stripe * 3;
    for (uint64_t off = 0; off < window; off += stripe) {
        const auto key = std::make_pair(layout.ChannelOf(off),
                                        layout.ChannelOffset(off));
        EXPECT_TRUE(seen.emplace(key, off).second)
            << "collision at offset " << off;
    }
    // Each channel received exactly 3 stripes at offsets 0, s, 2s.
    std::map<uint32_t, std::set<uint64_t>> per_channel;
    for (const auto &[key, off] : seen) per_channel[key.first].insert(key.second);
    for (const auto &[ch, offsets] : per_channel) {
        EXPECT_EQ(offsets.size(), 3u);
        EXPECT_TRUE(offsets.count(0));
        EXPECT_TRUE(offsets.count(stripe));
        EXPECT_TRUE(offsets.count(2ull * stripe));
    }
}

INSTANTIATE_TEST_SUITE_P(Grid, StripingBijectionTest,
                         ::testing::Values(std::pair{1u, 8192u},
                                           std::pair{10u, 4096u},
                                           std::pair{44u, 8192u},
                                           std::pair{44u, 2097152u}));

// ---------------------------------------------------------------------------
// Cluster router vs golden map: per-key ordering survives sharding
// ---------------------------------------------------------------------------

class ClusterOrderingTest : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(ClusterOrderingTest, PerKeyPutGetOrderPreservedAcrossRouter)
{
    sim::Simulator sim;
    cluster::ClusterConfig cc;
    cc.nodes = 3;
    cc.replication = 2;
    cc.node.kv.stack.capacity_scale = 0.02;
    cc.node.kv.stack.with_io_stack = false;
    cc.node.kv.store.slice_count = 2;
    cc.node.kv.stack.tune_sdf = [](core::SdfConfig &dc) {
        dc.flash.timing = nand::FastTestTiming();
    };
    cluster::Cluster cl(sim, cc);

    // Per-key chains of overwrites: chain step i+1 for a key issues only
    // after step i acked, but chains for different keys run concurrently,
    // landing on different nodes. The router must never let a key's later
    // acked put be shadowed by an earlier one.
    const uint64_t kKeys = 24;
    const int kChain = 5;
    util::Rng rng(GetParam());
    std::vector<uint32_t> golden(kKeys, 0);  // last acked size per key
    std::vector<std::vector<uint32_t>> sizes(kKeys);
    for (uint64_t k = 0; k < kKeys; ++k) {
        for (int i = 0; i < kChain; ++i) {
            sizes[k].push_back(static_cast<uint32_t>(
                4 * util::kKiB + rng.NextBelow(60 * util::kKiB)));
        }
    }
    std::function<void(uint64_t, int)> step = [&](uint64_t k, int i) {
        if (i == kChain) return;
        const uint32_t size = sizes[k][i];
        cl.router().Put(100 + k, size, [&, k, i, size](bool ok) {
            ASSERT_TRUE(ok) << "put failed for key " << k << " step " << i;
            golden[k] = size;
            step(k, i + 1);
        });
    };
    for (uint64_t k = 0; k < kKeys; ++k) step(k, 0);
    sim.Run();

    uint64_t checked = 0;
    for (uint64_t k = 0; k < kKeys; ++k) {
        cl.router().Get(100 + k, [&, k](const kv::GetResult &r) {
            ++checked;
            ASSERT_TRUE(r.ok) << "read failed for key " << k;
            ASSERT_TRUE(r.found) << "lost key " << k;
            EXPECT_EQ(r.value_size, golden[k]) << "stale value for key " << k;
        });
    }
    sim.Run();
    EXPECT_EQ(checked, kKeys);
    // The chains really did spread over every node.
    for (uint32_t n = 0; n < cl.node_count(); ++n) {
        EXPECT_GT(cl.router().node_puts(n), 0u) << "node " << n;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClusterOrderingTest,
                         ::testing::Values(51ull, 52ull, 53ull));

}  // namespace
}  // namespace sdf
