/**
 * @file
 * Node recovery and ring rebalancing: restart durability (WAL replay +
 * patch-footer recovery + recovery scan), membership-epoch handling in
 * the replication engine, the rebalancer's ownership-delta computation
 * (golden vnode-diff), anti-entropy redundancy repair, HashRing
 * membership edge cases, and a seeded chaos schedule — node stops and
 * restarts interleaved with overload bursts past the admission cap and
 * fail-slow pulses — with a full consistency audit.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <random>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/hash_ring.h"
#include "cluster/rebalancer.h"
#include "kv/recovery.h"
#include "obs/hub.h"
#include "sim/simulator.h"
#include "testbed/testbed.h"
#include "workload/kv_driver.h"

namespace sdf {
namespace {

// ---------------------------------------------------------------------------
// HashRing membership edge cases
// ---------------------------------------------------------------------------

TEST(HashRingMembership, SingleNodeRingOwnsEverything)
{
    cluster::HashRing ring(1, 16);
    for (uint64_t key = 0; key < 200; ++key) {
        const auto reps = ring.ReplicasFor(key, 3);
        ASSERT_EQ(reps.size(), 1u) << key;  // Clamped to the node count.
        EXPECT_EQ(reps[0], 0u);
        EXPECT_EQ(ring.OwnerVnode(key).second, 0u);
    }
}

TEST(HashRingMembership, RemovalBelowReplicationFactorDegrades)
{
    cluster::HashRing ring(3, 16);
    ring.RemoveNode(1);
    for (uint64_t key = 0; key < 200; ++key) {
        const auto reps = ring.ReplicasFor(key, 3);
        ASSERT_EQ(reps.size(), 2u) << key;
        for (uint32_t n : reps) EXPECT_TRUE(n == 0 || n == 2);
        EXPECT_NE(reps[0], reps[1]);
    }
    ring.RemoveNode(0);
    ring.RemoveNode(2);
    EXPECT_EQ(ring.node_count(), 0u);
    EXPECT_TRUE(ring.ReplicasFor(42, 2).empty());  // Fully failed cluster.
}

TEST(HashRingMembership, ReAddReproducesIdenticalVnodeLayout)
{
    cluster::HashRing ring(4, 32);
    std::vector<std::vector<uint32_t>> before;
    for (uint64_t key = 0; key < 1000; ++key) {
        before.push_back(ring.ReplicasFor(key, 2));
    }
    ring.RemoveNode(2);
    ring.AddNode(2);
    const cluster::HashRing fresh(4, 32);
    for (uint64_t key = 0; key < 1000; ++key) {
        EXPECT_EQ(ring.ReplicasFor(key, 2), before[key]) << key;
        EXPECT_EQ(fresh.ReplicasFor(key, 2), before[key]) << key;
    }
}

TEST(HashRingMembership, RemovalOnlyMovesTheDeadNodesKeys)
{
    cluster::HashRing before(4, 32), after(4, 32);
    after.RemoveNode(3);
    for (uint64_t key = 0; key < 1000; ++key) {
        const auto old = before.ReplicasFor(key, 2);
        if (std::find(old.begin(), old.end(), 3u) != old.end()) continue;
        // Keys that never touched node 3 keep their exact replica set.
        EXPECT_EQ(after.ReplicasFor(key, 2), old) << key;
    }
}

// ---------------------------------------------------------------------------
// Store restart from the journal (single node, no cluster)
// ---------------------------------------------------------------------------

testbed::KvStackConfig
SmallStack(uint32_t slices)
{
    testbed::KvStackConfig kc;
    kc.stack.capacity_scale = 0.02;
    kc.stack.with_io_stack = false;
    kc.stack.tune_sdf = [](core::SdfConfig &dc) {
        dc.flash.timing = nand::FastTestTiming();
    };
    kc.store.slice_count = slices;
    return kc;
}

/** Detach the live store and rebuild it from @p journal, like a restart. */
void
RestartStore(sim::Simulator &sim, testbed::KvStack &stack,
             const testbed::KvStackConfig &kc, kv::StoreJournal &journal,
             std::vector<std::unique_ptr<kv::Store>> &graveyard)
{
    stack.store->Detach();
    graveyard.push_back(std::move(stack.store));
    stack.store = std::make_unique<kv::Store>(sim, *stack.storage.storage,
                                              kc.store, &journal);
    sim.Run();  // Drain WAL-replay activity.
}

TEST(StoreRecovery, NewestVersionWinsAcrossRestarts)
{
    sim::Simulator sim;
    kv::StoreJournal journal;
    const testbed::KvStackConfig kc = SmallStack(1);
    testbed::KvStack stack = testbed::BuildKvStack(sim, kc, &journal);
    std::vector<std::unique_ptr<kv::Store>> graveyard;

    auto put = [&](uint32_t size_kib) {
        bool acked = false;
        stack.store->Put(7, size_kib * util::kKiB,
                         [&acked](bool ok) { acked = ok; });
        sim.Run();
        ASSERT_TRUE(acked);
    };
    auto expect_size = [&](uint32_t size_kib) {
        kv::GetResult res;
        stack.store->Get(7, [&res](const kv::GetResult &r) { res = r; });
        sim.Run();
        ASSERT_TRUE(res.ok && res.found);
        EXPECT_EQ(res.value_size, size_kib * util::kKiB);
    };

    put(16);
    stack.store->slice(0).Flush();
    sim.Run();
    put(32);  // Newer version only in the WAL at restart time.
    RestartStore(sim, stack, kc, journal, graveyard);
    expect_size(32);

    put(48);
    stack.store->slice(0).Flush();  // Both versions now flushed.
    sim.Run();
    RestartStore(sim, stack, kc, journal, graveyard);
    expect_size(48);
}

TEST(StoreRecovery, TombstonesSurviveRestart)
{
    sim::Simulator sim;
    kv::StoreJournal journal;
    const testbed::KvStackConfig kc = SmallStack(1);
    testbed::KvStack stack = testbed::BuildKvStack(sim, kc, &journal);
    std::vector<std::unique_ptr<kv::Store>> graveyard;

    int acked = 0;
    stack.store->Put(1, 16 * util::kKiB, [&acked](bool ok) { acked += ok; });
    stack.store->Put(2, 16 * util::kKiB, [&acked](bool ok) { acked += ok; });
    sim.Run();
    stack.store->slice(0).Flush();
    sim.Run();
    // Key 1's tombstone stays WAL-only; key 2's gets flushed to a patch.
    stack.store->slice(0).Delete(2, [&acked](bool ok) { acked += ok; });
    sim.Run();
    stack.store->slice(0).Flush();
    sim.Run();
    stack.store->slice(0).Delete(1, [&acked](bool ok) { acked += ok; });
    sim.Run();
    ASSERT_EQ(acked, 4);

    RestartStore(sim, stack, kc, journal, graveyard);
    for (uint64_t key : {uint64_t{1}, uint64_t{2}}) {
        kv::GetResult res;
        stack.store->Get(key, [&res](const kv::GetResult &r) { res = r; });
        sim.Run();
        EXPECT_TRUE(res.ok) << key;
        EXPECT_FALSE(res.found) << "deleted key " << key << " resurrected";
    }
    // Deleted keys are not live either: a rebalance pass must not copy them.
    std::map<uint64_t, uint32_t> live;
    stack.store->CollectLive(live);
    EXPECT_EQ(live.count(1), 0u);
    EXPECT_EQ(live.count(2), 0u);
}

TEST(StoreRecovery, JournalMirrorsStoredPatches)
{
    sim::Simulator sim;
    kv::StoreJournal journal;
    const testbed::KvStackConfig kc = SmallStack(2);
    testbed::KvStack stack = testbed::BuildKvStack(sim, kc, &journal);

    for (uint64_t key = 1; key <= 40; ++key) {
        stack.store->Put(key, 64 * util::kKiB, nullptr);
    }
    sim.Run();
    for (uint32_t s = 0; s < 2; ++s) stack.store->slice(s).Flush();
    sim.Run();

    ASSERT_GT(journal.TotalPatches(), 0u);
    EXPECT_GT(journal.next_patch_id, 0u);
    const std::vector<uint64_t> on_device =
        stack.storage.storage->StoredIds();
    const std::set<uint64_t> stored(on_device.begin(), on_device.end());
    for (const kv::SliceJournal &sj : journal.slices) {
        for (const auto &[id, footer] : sj.patches) {
            EXPECT_TRUE(stored.count(id))
                << "journal patch " << id << " missing from device";
        }
    }
}

// ---------------------------------------------------------------------------
// Cluster node restart
// ---------------------------------------------------------------------------

cluster::ClusterConfig
SmallCluster(uint32_t nodes, uint32_t replication)
{
    cluster::ClusterConfig cc;
    cc.nodes = nodes;
    cc.replication = replication;
    cc.node.kv.stack.capacity_scale = 0.02;
    cc.node.kv.stack.with_io_stack = false;
    cc.node.kv.store.slice_count = 2;
    cc.node.kv.stack.tune_sdf = [](core::SdfConfig &dc) {
        dc.flash.timing = nand::FastTestTiming();
    };
    return cc;
}

/** Put keys [first, last] through the router; all must ack. */
void
PutRange(sim::Simulator &sim, cluster::Cluster &cl, uint64_t first,
         uint64_t last, uint32_t value_bytes)
{
    int acked = 0;
    for (uint64_t key = first; key <= last; ++key) {
        cl.router().Put(key, value_bytes,
                        [&acked](bool ok) { acked += ok; });
    }
    sim.Run();
    ASSERT_EQ(acked, static_cast<int>(last - first + 1));
}

/** Closed-loop read-back of keys [first, last]; returns #found. */
uint64_t
AuditRange(sim::Simulator &sim, cluster::Cluster &cl, uint64_t first,
           uint64_t last)
{
    uint64_t found = 0;
    uint64_t next = first;
    std::function<void()> step = [&]() {
        if (next > last) return;
        cl.router().Get(next++, [&](const kv::GetResult &r) {
            found += r.ok && r.found;
            step();
        });
    };
    for (int s = 0; s < 4; ++s) step();
    sim.Run();
    return found;
}

TEST(ClusterRecovery, RestartPreservesEveryAckedWrite)
{
    sim::Simulator sim;
    cluster::Cluster cl(sim, SmallCluster(3, 2));
    // Flushed generation: on-device patches at stop time.
    PutRange(sim, cl, 1, 30, 16 * util::kKiB);
    cl.FlushAll();
    sim.Run();
    // Unflushed generation: lives only in memtables + the WAL mirror.
    PutRange(sim, cl, 31, 50, 16 * util::kKiB);

    const util::TimeNs t_stop = sim.Now();
    cl.StopNode(1);
    EXPECT_FALSE(cl.node(1).running());
    EXPECT_FALSE(cl.router().node_live(1));
    // Writes during the downtime land on the survivors.
    PutRange(sim, cl, 51, 60, 16 * util::kKiB);

    bool back = false;
    cl.RestartNode(1, [&back]() { back = true; });
    sim.Run();
    ASSERT_TRUE(back);
    EXPECT_TRUE(cl.node(1).running());
    EXPECT_TRUE(cl.router().node_live(1));

    // The recovery was charged, not free: patches were scanned, WAL
    // records replayed, and simulated time passed.
    const cluster::StorageNode::RecoveryStats &rec = cl.node(1).recovery();
    EXPECT_EQ(rec.restarts, 1u);
    EXPECT_GT(rec.patches_scanned, 0u);
    EXPECT_GT(rec.bytes_scanned, 0u);
    EXPECT_GT(rec.wal_records_replayed, 0u);
    EXPECT_GT(rec.last_recovery_ns, 0u);
    EXPECT_GT(sim.Now(), t_stop);

    EXPECT_EQ(AuditRange(sim, cl, 1, 60), 60u);
    EXPECT_EQ(cl.rebalancer().CountUnderReplicated(), 0u);
}

TEST(ClusterRecovery, EpochChangeMidGetRestartsAgainstFreshPlacement)
{
    sim::Simulator sim;
    cluster::Cluster cl(sim, SmallCluster(3, 2));
    PutRange(sim, cl, 1, 40, 16 * util::kKiB);
    cl.FlushAll();
    sim.Run();
    EXPECT_EQ(cl.router().epoch(), 0u);

    // Launch a wave of gets and kill a node while they are in flight:
    // requests parked on node 0 never get a reply, time out, and find a
    // new membership epoch when they come back to the engine. The stop
    // fires from inside the wave (after the 10th completion) so later
    // gets are guaranteed to straddle the membership change.
    int done = 0, found = 0;
    bool stopped = false;
    for (uint64_t key = 1; key <= 40; ++key) {
        cl.router().Get(key, [&](const kv::GetResult &r) {
            ++done;
            found += r.ok && r.found;
            if (done == 10 && !stopped) {
                stopped = true;
                cl.StopNode(0);
            }
        });
    }
    sim.Run();
    EXPECT_EQ(done, 40);
    EXPECT_EQ(found, 40) << "failover must mask the stopped node";
    EXPECT_EQ(cl.router().epoch(), 1u);
    EXPECT_GE(cl.router().stats().epoch_restarts, 1u);
}

// ---------------------------------------------------------------------------
// Rebalancer: golden vnode-diff and anti-entropy
// ---------------------------------------------------------------------------

TEST(Rebalance, PassMovesExactlyTheOwnershipDelta)
{
    sim::Simulator sim;
    cluster::Cluster cl(sim, SmallCluster(4, 2));
    const uint64_t kKeys = 80;
    PutRange(sim, cl, 1, kKeys, 16 * util::kKiB);

    cl.StopNode(3);
    bool healed = false;
    cl.anti_entropy().Run([&healed]() { healed = true; });
    sim.Run();
    ASSERT_TRUE(healed);

    // Golden delta, computed independently from the two ring layouts:
    // every key that listed node 3 as a replica must be streamed to the
    // one node newly added to its replica set — and nothing else moves.
    const cluster::HashRing before(4, 64);
    cluster::HashRing after(4, 64);
    after.RemoveNode(3);
    std::vector<cluster::KeyMove> expected;
    for (uint64_t key = 1; key <= kKeys; ++key) {
        const auto old = before.ReplicasFor(key, 2);
        if (std::find(old.begin(), old.end(), 3u) == old.end()) continue;
        const auto now = after.ReplicasFor(key, 2);
        const uint32_t survivor = old[0] == 3 ? old[1] : old[0];
        for (uint32_t target : now) {
            if (target == survivor) continue;
            expected.push_back(
                cluster::KeyMove{key, 16 * util::kKiB, survivor, target});
        }
    }
    ASSERT_GT(expected.size(), 0u);

    const std::vector<cluster::KeyMove> &actual =
        cl.rebalancer().last_moves();
    ASSERT_EQ(actual.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(actual[i].key, expected[i].key) << i;
        EXPECT_EQ(actual[i].value_size, expected[i].value_size) << i;
        EXPECT_EQ(actual[i].source, expected[i].source) << i;
        EXPECT_EQ(actual[i].dest, expected[i].dest) << i;
    }
}

TEST(Rebalance, AntiEntropyRestoresRedundancyAndReportsIt)
{
    obs::Hub hub;
    sim::Simulator sim;
    sim.set_hub(&hub);
    cluster::Cluster cl(sim, SmallCluster(4, 2));
    PutRange(sim, cl, 1, 40, 16 * util::kKiB);
    cl.FlushAll();
    sim.Run();

    cl.StopNode(3);
    const uint64_t degraded = cl.rebalancer().CountUnderReplicated();
    EXPECT_GT(degraded, 0u);
    bool healed = false;
    cl.anti_entropy().Run([&healed]() { healed = true; });
    sim.Run();
    ASSERT_TRUE(healed);
    EXPECT_EQ(cl.rebalancer().CountUnderReplicated(), 0u);
    EXPECT_EQ(cl.rebalancer().stats().keys_moved, degraded);

    const obs::MetricsRegistry::Snapshot snap = hub.metrics().Take();
    EXPECT_EQ(snap.counters.at("cluster.rebalance.anti_entropy_passes"), 1u);
    EXPECT_EQ(snap.counters.at("cluster.rebalance.keys_moved"), degraded);
    EXPECT_GT(snap.counters.at("cluster.rebalance.bytes_moved"), 0u);
    EXPECT_EQ(snap.counters.at("cluster.rebalance.move_failures"), 0u);
    EXPECT_EQ(snap.gauges.at("cluster.rebalance.under_replicated"), 0.0);
    // Bulk transfers rode the survivors' NICs, not the RPC fast path.
    uint64_t bulk = 0;
    for (uint32_t n = 0; n < cl.node_count(); ++n) {
        bulk += cl.node(n).net().bulk_messages();
    }
    EXPECT_GT(bulk, 0u);

    // All 40 keys remain readable through the 3 survivors.
    EXPECT_EQ(AuditRange(sim, cl, 1, 40), 40u);
}

TEST(Rebalance, SameSeedRestartRunsExportByteIdenticalStats)
{
    auto run_once = []() {
        obs::Hub hub;
        sim::Simulator sim;
        sim.set_hub(&hub);
        cluster::Cluster cl(sim, SmallCluster(3, 2));
        std::vector<uint64_t> keys;
        int acked = 0;
        for (uint64_t k = 1; k <= 30; ++k) {
            keys.push_back(k);
            cl.router().Put(k, 16 * util::kKiB,
                            [&acked](bool ok) { acked += ok; });
        }
        sim.Run();
        cl.FlushAll();
        sim.Run();

        const util::TimeNs t0 = sim.Now();
        sim.ScheduleAt(t0 + util::MsToNs(30), [&cl]() { cl.StopNode(1); });
        sim.ScheduleAt(t0 + util::MsToNs(70),
                       [&cl]() { cl.RestartNode(1); });
        workload::MixedRunConfig mc;
        mc.actors = 4;
        mc.read_fraction = 0.7;
        mc.value_bytes = 16 * util::kKiB;
        mc.duration = util::MsToNs(150);
        mc.seed = 99;
        const workload::KvService svc = cl.Service();
        workload::RunMixedLoad(sim, svc, keys, mc);
        sim.Run();
        return obs::StatsJson(hub, {{"run", "recovery"}}, {});
    };
    const std::string a = run_once();
    const std::string b = run_once();
    EXPECT_GT(a.size(), 100u);
    EXPECT_EQ(a, b) << "restart/rebalance must stay deterministic";
}

// ---------------------------------------------------------------------------
// Seeded chaos schedule with full consistency audit
// ---------------------------------------------------------------------------

struct ChaosEvent
{
    enum Kind
    {
        kPutBatch,
        kGetBatch,
        kStopNode,
        kRestartNode,
        kAntiEntropy,
        kOverloadBurst,   ///< Open-loop read burst past the admission cap.
        kFailSlowPulse,   ///< One node serves slow for a batch, then heals.
    };
    Kind kind;
    uint32_t node = 0;    ///< For stop/restart/fail-slow.
    uint32_t count = 0;   ///< For put/get batches and bursts.
    double factor = 1.0;  ///< Fail-slow service-time multiplier.
};

const char *
ChaosKindName(ChaosEvent::Kind k)
{
    switch (k) {
      case ChaosEvent::kPutBatch: return "put";
      case ChaosEvent::kGetBatch: return "get";
      case ChaosEvent::kStopNode: return "stop";
      case ChaosEvent::kRestartNode: return "restart";
      case ChaosEvent::kAntiEntropy: return "anti-entropy";
      case ChaosEvent::kOverloadBurst: return "burst";
      case ChaosEvent::kFailSlowPulse: return "failslow";
    }
    return "?";
}

/** Deterministic per-key value size so the audit can verify contents. */
uint32_t
ChaosValueBytes(uint64_t key)
{
    return static_cast<uint32_t>((8 + 8 * (key % 4)) * util::kKiB);
}

/**
 * Generate a seeded event schedule. Node stops/restarts are legal by
 * construction (tracked against a membership mirror, at least one node
 * always stays up), so a schedule replays standalone — drop events from
 * the tail/middle to shrink a failure.
 */
std::vector<ChaosEvent>
MakeChaosSchedule(uint64_t seed, uint32_t nodes, uint32_t steps)
{
    std::mt19937_64 rng(seed);
    std::set<uint32_t> live;
    for (uint32_t n = 0; n < nodes; ++n) live.insert(n);
    std::vector<ChaosEvent> schedule;
    for (uint32_t s = 0; s < steps; ++s) {
        const uint32_t roll = static_cast<uint32_t>(rng() % 100);
        ChaosEvent e;
        if (roll < 30) {
            e.kind = ChaosEvent::kPutBatch;
            e.count = 2 + static_cast<uint32_t>(rng() % 4);
        } else if (roll < 50) {
            e.kind = ChaosEvent::kGetBatch;
            e.count = 2 + static_cast<uint32_t>(rng() % 6);
        } else if (roll < 62) {
            e.kind = ChaosEvent::kOverloadBurst;
            e.count = 48 + static_cast<uint32_t>(rng() % 48);
        } else if (roll < 74) {
            e.kind = ChaosEvent::kFailSlowPulse;
            auto it = live.begin();
            std::advance(it, rng() % live.size());
            e.node = *it;
            e.factor = 2.0 + static_cast<double>(rng() % 7);
            e.count = 4 + static_cast<uint32_t>(rng() % 6);
        } else if (roll < 86 && live.size() >= 2) {
            e.kind = ChaosEvent::kStopNode;
            auto it = live.begin();
            std::advance(it, rng() % live.size());
            e.node = *it;
            live.erase(e.node);
        } else if (roll < 96 && live.size() < nodes) {
            e.kind = ChaosEvent::kRestartNode;
            std::vector<uint32_t> down;
            for (uint32_t n = 0; n < nodes; ++n) {
                if (live.count(n) == 0) down.push_back(n);
            }
            e.node = down[rng() % down.size()];
            live.insert(e.node);
        } else {
            e.kind = ChaosEvent::kAntiEntropy;
        }
        schedule.push_back(e);
    }
    return schedule;
}

std::string
ChaosScheduleText(uint64_t seed, const std::vector<ChaosEvent> &schedule)
{
    std::ostringstream os;
    os << "seed " << seed << " schedule:";
    for (const ChaosEvent &e : schedule) {
        os << " " << ChaosKindName(e.kind);
        if (e.kind == ChaosEvent::kStopNode ||
            e.kind == ChaosEvent::kRestartNode) {
            os << "(" << e.node << ")";
        } else if (e.kind == ChaosEvent::kFailSlowPulse) {
            os << "(" << e.node << ",x" << e.factor << "," << e.count << ")";
        } else if (e.kind != ChaosEvent::kAntiEntropy) {
            os << "(" << e.count << ")";
        }
    }
    return os.str();
}

/** @return an empty string on success, else the failure description.
 *  Adds the run's admission sheds to @p shed_total (proof the bursts
 *  actually pressed against the cap, not just queued politely). */
std::string
RunChaosSchedule(uint64_t seed, const std::vector<ChaosEvent> &schedule,
                 uint64_t *shed_total = nullptr)
{
    const uint32_t kNodes = 3;
    sim::Simulator sim;
    cluster::ClusterConfig cc = SmallCluster(kNodes, 2);
    // Real admission control so overload bursts actually shed — but roomy
    // enough that the closed-loop audits (4 streams) never trip it.
    cc.node.admission_cap = 32;
    cluster::Cluster cl(sim, cc);
    std::mt19937_64 rng(seed ^ 0x5DEECE66DULL);

    // Preload a base population.
    std::vector<uint64_t> acked_keys;
    uint64_t next_key = 1;
    uint64_t failed_puts = 0;
    auto put_batch = [&](uint32_t count) {
        for (uint32_t i = 0; i < count; ++i) {
            const uint64_t key = next_key++;
            cl.router().Put(key, ChaosValueBytes(key), [&, key](bool ok) {
                if (ok) {
                    acked_keys.push_back(key);
                } else {
                    ++failed_puts;
                }
            });
        }
        sim.Run();
    };
    put_batch(10);

    for (const ChaosEvent &e : schedule) {
        switch (e.kind) {
          case ChaosEvent::kPutBatch: put_batch(e.count); break;
          case ChaosEvent::kGetBatch:
            // Load only; results are unchecked mid-chaos (a key may have
            // every current holder down until its node restarts).
            for (uint32_t i = 0; i < e.count && !acked_keys.empty(); ++i) {
                cl.router().Get(acked_keys[rng() % acked_keys.size()],
                                [](const kv::GetResult &) {});
            }
            sim.Run();
            break;
          case ChaosEvent::kStopNode: cl.StopNode(e.node); break;
          case ChaosEvent::kRestartNode:
            cl.RestartNode(e.node);
            sim.Run();
            break;
          case ChaosEvent::kAntiEntropy:
            cl.anti_entropy().Run();
            sim.Run();
            break;
          case ChaosEvent::kOverloadBurst:
            // Flush first so reads cost device time, then arrive all at
            // once, far past the per-node admission cap. Outcomes are
            // typed (many are kOverloaded) and deliberately unchecked: a
            // shed read must be a refusal, never corruption — which the
            // final audit is what verifies.
            cl.FlushAll();
            sim.Run();
            for (uint32_t i = 0; i < e.count && !acked_keys.empty(); ++i) {
                cl.router().Get(acked_keys[rng() % acked_keys.size()],
                                [](const kv::GetResult &) {});
            }
            sim.Run();
            break;
          case ChaosEvent::kFailSlowPulse:
            // The node keeps answering, just e.factor slower, while a
            // batch of reads runs against it; then it heals.
            cl.node(e.node).SetFailSlow(e.factor);
            for (uint32_t i = 0; i < e.count && !acked_keys.empty(); ++i) {
                cl.router().Get(acked_keys[rng() % acked_keys.size()],
                                [](const kv::GetResult &) {});
            }
            sim.Run();
            cl.node(e.node).SetFailSlow(1.0);
            break;
        }
        // Invariant: the membership never empties.
        if (cl.router().node_count() == 0) return "membership emptied";
    }

    // Heal completely: restart everything, then one anti-entropy pass.
    for (uint32_t n = 0; n < kNodes; ++n) {
        if (!cl.node(n).running()) {
            cl.RestartNode(n);
            sim.Run();
        }
    }
    cl.anti_entropy().Run();
    sim.Run();
    if (const uint64_t under = cl.rebalancer().CountUnderReplicated();
        under != 0) {
        return std::to_string(under) + " keys under-replicated after heal";
    }

    // Full audit: every acked key must come back with the right size.
    uint64_t lost = 0, wrong_size = 0;
    size_t next = 0;
    std::function<void()> step = [&]() {
        if (next >= acked_keys.size()) return;
        const uint64_t key = acked_keys[next++];
        cl.router().Get(key, [&, key](const kv::GetResult &r) {
            if (!r.ok || !r.found) {
                ++lost;
            } else if (r.value_size != ChaosValueBytes(key)) {
                ++wrong_size;
            }
            step();
        });
    };
    for (int s = 0; s < 4; ++s) step();
    sim.Run();
    if (shed_total != nullptr) {
        for (uint32_t n = 0; n < kNodes; ++n) {
            *shed_total += cl.node(n).admission().shed_overload;
        }
    }
    if (lost != 0 || wrong_size != 0) {
        return std::to_string(lost) + " keys lost, " +
               std::to_string(wrong_size) + " wrong sizes (of " +
               std::to_string(acked_keys.size()) + " acked)";
    }
    return "";
}

TEST(Chaos, HundredSeededSchedulesLoseNothing)
{
    uint64_t shed_total = 0;
    for (uint64_t seed = 1; seed <= 100; ++seed) {
        const std::vector<ChaosEvent> schedule =
            MakeChaosSchedule(seed, 3, 12);
        const std::string failure =
            RunChaosSchedule(seed, schedule, &shed_total);
        ASSERT_EQ(failure, "")
            << failure << "\nreplay with: " << ChaosScheduleText(seed, schedule);
    }
    // Across 100 schedules the overload bursts must have hit real
    // admission control somewhere — otherwise this suite never actually
    // mixed sheds with stops, restarts and fail-slow windows.
    EXPECT_GT(shed_total, 0u);
}

}  // namespace
}  // namespace sdf
