/**
 * @file
 * Unit tests for the SDF device: capacity exposure, the asymmetric
 * interface contract (erase-before-write), wear leveling, bad-block
 * handling, data integrity, and interrupt integration.
 */
#include <gtest/gtest.h>

#include <cstring>
#include <memory>

#include "sdf/sdf_device.h"
#include "sim/simulator.h"
#include "util/fingerprint.h"

namespace sdf::core {
namespace {

SdfConfig
TinyConfig(bool payloads = false)
{
    SdfConfig c;
    c.flash.geometry = nand::TinyTestGeometry();
    c.flash.timing = nand::FastTestTiming();
    c.flash.store_payloads = payloads;
    c.link = controller::UnlimitedLinkSpec();
    c.spare_blocks_per_plane = 2;
    c.irq.coalesce = false;  // Precise latencies for unit tests.
    return c;
}

TEST(SdfDevice, ExposesAlmostAllRawCapacity)
{
    sim::Simulator sim;
    SdfDevice full(sim, BaiduSdfConfig(1.0));
    // The paper: 99 % of raw capacity for user data (only BBM spares
    // withheld — no over-provisioning, no parity).
    const double ratio = static_cast<double>(full.user_capacity()) /
                         static_cast<double>(full.raw_capacity());
    EXPECT_GE(ratio, 0.99);
    EXPECT_LE(ratio, 1.0);
}

TEST(SdfDevice, GeometryDerivedInterfaceUnits)
{
    sim::Simulator sim;
    SdfDevice dev(sim, BaiduSdfConfig(0.05));
    EXPECT_EQ(dev.channel_count(), 44u);
    EXPECT_EQ(dev.unit_bytes(), 8 * util::kMiB);
    EXPECT_EQ(dev.read_unit_bytes(), 8 * util::kKiB);
}

TEST(SdfDevice, WriteRequiresErasedUnit)
{
    sim::Simulator sim;
    SdfDevice dev(sim, TinyConfig());
    bool ok = true;
    dev.WriteUnit(0, 0, [&](bool s) { ok = s; });
    sim.Run();
    EXPECT_FALSE(ok);  // Unwritten but not erased: contract violation.
    EXPECT_EQ(dev.stats().contract_violations, 1u);

    dev.EraseUnit(0, 0, nullptr);
    sim.Run();
    EXPECT_EQ(dev.unit_state(0, 0), UnitState::kErased);
    dev.WriteUnit(0, 0, [&](bool s) { ok = s; });
    sim.Run();
    EXPECT_TRUE(ok);
    EXPECT_EQ(dev.unit_state(0, 0), UnitState::kWritten);
}

TEST(SdfDevice, RewriteRequiresReErase)
{
    sim::Simulator sim;
    SdfDevice dev(sim, TinyConfig());
    dev.EraseUnit(1, 3, nullptr);
    sim.Run();
    dev.WriteUnit(1, 3, nullptr);
    sim.Run();
    bool ok = true;
    dev.WriteUnit(1, 3, [&](bool s) { ok = s; });
    sim.Run();
    EXPECT_FALSE(ok);

    dev.EraseUnit(1, 3, nullptr);
    sim.Run();
    dev.WriteUnit(1, 3, [&](bool s) { ok = s; });
    sim.Run();
    EXPECT_TRUE(ok);
}

TEST(SdfDevice, FirstEraseIsCheapReuseEraseIsReal)
{
    sim::Simulator sim;
    SdfDevice dev(sim, TinyConfig());
    dev.EraseUnit(0, 0, nullptr);
    sim.Run();
    // Fresh unit: pool blocks are factory-erased; no physical erase.
    EXPECT_EQ(dev.stats().physical_block_erases, 0u);

    dev.WriteUnit(0, 0, nullptr);
    sim.Run();
    dev.EraseUnit(0, 0, nullptr);
    sim.Run();
    // Reuse: all four mapped plane blocks physically erased.
    EXPECT_EQ(dev.stats().physical_block_erases, 4u);
}

TEST(SdfDevice, ReadsBackWrittenPayload)
{
    sim::Simulator sim;
    SdfDevice dev(sim, TinyConfig(/*payloads=*/true));
    const uint64_t unit_bytes = dev.unit_bytes();
    const auto payload = util::MakeDeterministicPayload(unit_bytes, 1234);

    dev.EraseUnit(2, 1, nullptr);
    sim.Run();
    dev.WriteUnit(2, 1, nullptr, payload.data());
    sim.Run();

    std::vector<uint8_t> out;
    bool ok = false;
    dev.Read(2, 1, 0, unit_bytes, [&](bool s) { ok = s; }, &out);
    sim.Run();
    EXPECT_TRUE(ok);
    EXPECT_EQ(out, payload);
}

TEST(SdfDevice, PartialReadsAtArbitraryAlignedOffsets)
{
    sim::Simulator sim;
    SdfDevice dev(sim, TinyConfig(/*payloads=*/true));
    const uint64_t unit_bytes = dev.unit_bytes();
    const uint32_t page = dev.read_unit_bytes();
    const auto payload = util::MakeDeterministicPayload(unit_bytes, 77);

    dev.EraseUnit(0, 0, nullptr);
    sim.Run();
    dev.WriteUnit(0, 0, nullptr, payload.data());
    sim.Run();

    // Read one page from each plane's 2 MB stripe of the unit.
    const uint64_t plane_bytes = unit_bytes / 4;
    for (int p = 0; p < 4; ++p) {
        std::vector<uint8_t> out;
        const uint64_t off = p * plane_bytes + page;
        dev.Read(0, 0, off, page, nullptr, &out);
        sim.Run();
        ASSERT_EQ(out.size(), page);
        EXPECT_EQ(0, std::memcmp(out.data(), payload.data() + off, page));
    }
}

TEST(SdfDevice, ReadOfUnwrittenUnitReturnsErasedBytes)
{
    sim::Simulator sim;
    SdfDevice dev(sim, TinyConfig(/*payloads=*/true));
    std::vector<uint8_t> out;
    bool ok = false;
    dev.Read(0, 5, 0, dev.read_unit_bytes(), [&](bool s) { ok = s; }, &out);
    sim.Run();
    EXPECT_TRUE(ok);
    EXPECT_EQ(out[0], 0xFF);
}

TEST(SdfDevice, RejectsMisalignedAndOutOfRange)
{
    sim::Simulator sim;
    SdfDevice dev(sim, TinyConfig());
    int failures = 0;
    auto expect_fail = [&](bool s) {
        if (!s) ++failures;
    };
    dev.Read(0, 0, 1, dev.read_unit_bytes(), expect_fail);      // misaligned
    dev.Read(0, 0, 0, dev.read_unit_bytes() / 2, expect_fail);  // bad length
    dev.Read(0, 0, dev.unit_bytes(), dev.read_unit_bytes(), expect_fail);
    dev.Read(dev.channel_count(), 0, 0, dev.read_unit_bytes(), expect_fail);
    dev.Read(0, dev.units_per_channel(), 0, dev.read_unit_bytes(),
             expect_fail);
    dev.EraseUnit(0, dev.units_per_channel(), expect_fail);
    sim.Run();
    EXPECT_EQ(failures, 6);
    EXPECT_EQ(dev.stats().contract_violations, 6u);
}

TEST(SdfDevice, DynamicWearLevelingRotatesBlocks)
{
    sim::Simulator sim;
    SdfConfig cfg = TinyConfig();
    cfg.spare_blocks_per_plane = 4;
    SdfDevice dev(sim, cfg);

    // Hammer one unit with erase/write cycles; wear must spread over the
    // free pool instead of concentrating on one block.
    const int cycles = 64;
    for (int i = 0; i < cycles; ++i) {
        dev.EraseUnit(0, 0, nullptr);
        sim.Run();
        dev.WriteUnit(0, 0, nullptr);
        sim.Run();
    }
    const nand::Geometry &geo = dev.flash().geometry();
    uint32_t max_ec = 0;
    for (uint32_t b = 0; b < geo.blocks_per_plane; ++b) {
        max_ec = std::max(max_ec,
                          dev.flash().channel(0).block_meta({0, b}).erase_count);
    }
    EXPECT_LT(max_ec, static_cast<uint32_t>(cycles));
    // Wear spreads over at most the plane's whole block population.
    EXPECT_GE(max_ec,
              static_cast<uint32_t>(cycles) / geo.blocks_per_plane);
}

TEST(SdfDevice, WearOutRetiresBlocksAndEventuallyKillsUnit)
{
    sim::Simulator sim;
    SdfConfig cfg = TinyConfig();
    cfg.flash.errors.enabled = true;
    cfg.flash.errors.endurance_cycles = 2;
    cfg.flash.errors.wearout_fail_scale = 1.0;
    cfg.flash.geometry.channels = 1;
    cfg.spare_blocks_per_plane = 2;
    SdfDevice dev(sim, cfg);

    bool any_dead = false;
    for (int round = 0; round < 400 && !any_dead; ++round) {
        for (uint32_t u = 0; u < dev.units_per_channel(); ++u) {
            dev.EraseUnit(0, u, nullptr);
            sim.Run();
            if (dev.unit_state(0, u) == UnitState::kDead) {
                any_dead = true;
                break;
            }
            dev.WriteUnit(0, u, nullptr);
            sim.Run();
        }
    }
    EXPECT_TRUE(any_dead);
    EXPECT_GT(dev.stats().blocks_retired, 0u);
}

TEST(SdfDevice, ChannelsOperateIndependently)
{
    sim::Simulator sim;
    SdfDevice dev(sim, TinyConfig());
    dev.EraseUnit(0, 0, nullptr);
    sim.Run();
    dev.DebugForceWritten(1, 1);

    // A long write on channel 0 must not delay a read on channel 1.
    util::TimeNs write_done = 0, read_done = 0;
    dev.WriteUnit(0, 0, [&](bool) { write_done = sim.Now(); });
    dev.Read(1, 1, 0, dev.read_unit_bytes(),
             [&](bool) { read_done = sim.Now(); });
    sim.Run();
    EXPECT_LT(read_done, write_done / 4);
}

TEST(SdfDevice, EraseLatencyMatchesBlockEraseTime)
{
    sim::Simulator sim;
    SdfConfig cfg;
    cfg.flash.geometry = nand::TinyTestGeometry();
    cfg.flash.timing = nand::Micron25nmMlcTiming();
    cfg.link = controller::UnlimitedLinkSpec();
    cfg.spare_blocks_per_plane = 2;
    SdfDevice dev(sim, cfg);
    dev.DebugForceWritten(0, 0);

    util::TimeNs done_at = 0;
    dev.EraseUnit(0, 0, [&](bool) { done_at = sim.Now(); });
    sim.Run();
    // Four plane erases run in parallel: ~3 ms, not 12 ms.
    EXPECT_GE(done_at, util::MsToNs(3.0));
    EXPECT_LE(done_at, util::MsToNs(3.6));
}

TEST(SdfDevice, StatsAccumulate)
{
    sim::Simulator sim;
    SdfDevice dev(sim, TinyConfig());
    dev.EraseUnit(0, 0, nullptr);
    sim.Run();
    dev.WriteUnit(0, 0, nullptr);
    sim.Run();
    dev.Read(0, 0, 0, 2 * dev.read_unit_bytes(), nullptr);
    sim.Run();
    EXPECT_EQ(dev.stats().unit_erases, 1u);
    EXPECT_EQ(dev.stats().unit_writes, 1u);
    EXPECT_EQ(dev.stats().page_reads, 2u);
    EXPECT_EQ(dev.stats().written_bytes, dev.unit_bytes());
    EXPECT_EQ(dev.stats().read_bytes, 2u * dev.read_unit_bytes());
}

TEST(SdfDevice, FactoryBadBlocksShrinkButDontBreakCapacity)
{
    sim::Simulator sim;
    SdfConfig cfg = TinyConfig();
    cfg.flash.factory_bad_per_mille = 100;  // Exaggerated defects.
    cfg.flash.seed = 11;
    cfg.spare_blocks_per_plane = 1;
    SdfDevice dev(sim, cfg);
    EXPECT_GT(dev.units_per_channel(), 0u);
    EXPECT_LT(dev.units_per_channel(), cfg.flash.geometry.blocks_per_plane);

    // Every exposed unit must still be usable.
    bool ok = false;
    dev.EraseUnit(0, dev.units_per_channel() - 1, [&](bool s) { ok = s; });
    sim.Run();
    EXPECT_TRUE(ok);
}

}  // namespace
}  // namespace sdf::core
