/**
 * @file
 * Unit tests for the discrete-event simulation core.
 */
#include <gtest/gtest.h>

#include <vector>

#include "sim/fifo_resource.h"
#include "sim/simulator.h"

namespace sdf::sim {
namespace {

TEST(Simulator, StartsAtTimeZero)
{
    Simulator sim;
    EXPECT_EQ(sim.Now(), 0);
    EXPECT_EQ(sim.PendingEvents(), 0u);
}

TEST(Simulator, RunsEventsInTimeOrder)
{
    Simulator sim;
    std::vector<int> order;
    sim.Schedule(30, [&]() { order.push_back(3); });
    sim.Schedule(10, [&]() { order.push_back(1); });
    sim.Schedule(20, [&]() { order.push_back(2); });
    sim.Run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(sim.Now(), 30);
}

TEST(Simulator, EqualTimestampsFireInScheduleOrder)
{
    Simulator sim;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i) {
        sim.Schedule(5, [&order, i]() { order.push_back(i); });
    }
    sim.Run();
    for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, CallbackCanScheduleMoreEvents)
{
    Simulator sim;
    int fired = 0;
    sim.Schedule(1, [&]() {
        ++fired;
        sim.Schedule(1, [&]() {
            ++fired;
            sim.Schedule(1, [&]() { ++fired; });
        });
    });
    sim.Run();
    EXPECT_EQ(fired, 3);
    EXPECT_EQ(sim.Now(), 3);
}

TEST(Simulator, CancelPreventsExecution)
{
    Simulator sim;
    bool ran = false;
    const EventId id = sim.Schedule(10, [&]() { ran = true; });
    sim.Cancel(id);
    sim.Run();
    EXPECT_FALSE(ran);
}

TEST(Simulator, CancelInvalidIsNoOp)
{
    Simulator sim;
    sim.Cancel(kInvalidEvent);
    sim.Cancel(999999);
    sim.Run();
}

TEST(Simulator, PendingEventsTracksScheduleFireAndCancel)
{
    Simulator sim;
    EXPECT_EQ(sim.PendingEvents(), 0u);
    const EventId a = sim.Schedule(10, []() {});
    sim.Schedule(20, []() {});
    EXPECT_EQ(sim.PendingEvents(), 2u);
    sim.Cancel(a);
    EXPECT_EQ(sim.PendingEvents(), 1u);
    sim.Run();
    EXPECT_EQ(sim.PendingEvents(), 0u);
}

// Regression: cancelling an id that has already fired (or one that was
// never issued) must leave no permanent residue in the simulator's
// bookkeeping — PendingEvents() used to drift when stale ids accumulated.
TEST(Simulator, CancelAfterFireLeavesNoResidue)
{
    Simulator sim;
    const EventId a = sim.Schedule(1, []() {});
    sim.Run();
    EXPECT_EQ(sim.PendingEvents(), 0u);
    sim.Cancel(a);          // Already fired: must be a no-op.
    sim.Cancel(a + 1000);   // Never issued: must be a no-op.
    EXPECT_EQ(sim.PendingEvents(), 0u);
    bool ran = false;
    sim.Schedule(1, [&]() { ran = true; });
    EXPECT_EQ(sim.PendingEvents(), 1u);
    sim.Run();
    EXPECT_TRUE(ran);
    EXPECT_EQ(sim.PendingEvents(), 0u);
}

TEST(Simulator, RepeatedScheduleFireCancelCyclesStayConsistent)
{
    Simulator sim;
    int fired = 0;
    for (int cycle = 0; cycle < 100; ++cycle) {
        const EventId keep = sim.Schedule(1, [&]() { ++fired; });
        const EventId drop = sim.Schedule(2, [&]() { ++fired; });
        sim.Cancel(drop);
        sim.Cancel(keep - 1);  // Stale id from the previous cycle.
        EXPECT_EQ(sim.PendingEvents(), 1u);
        sim.Run();
        EXPECT_EQ(sim.PendingEvents(), 0u);
    }
    EXPECT_EQ(fired, 100);
}

TEST(Simulator, CancelledEventsDoNotStallRunUntil)
{
    Simulator sim;
    // A far-future event that gets cancelled must not make RunUntil
    // report pending work or hold the queue.
    const EventId far = sim.Schedule(1000000, []() {});
    int fired = 0;
    sim.Schedule(10, [&]() { ++fired; });
    sim.Cancel(far);
    EXPECT_FALSE(sim.RunUntil(100));
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(sim.PendingEvents(), 0u);
}

TEST(Simulator, RunUntilStopsAtDeadline)
{
    Simulator sim;
    int fired = 0;
    sim.Schedule(10, [&]() { ++fired; });
    sim.Schedule(20, [&]() { ++fired; });
    sim.Schedule(30, [&]() { ++fired; });
    EXPECT_TRUE(sim.RunUntil(20));
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(sim.Now(), 20);
    EXPECT_FALSE(sim.RunUntil(100));
    EXPECT_EQ(fired, 3);
    EXPECT_EQ(sim.Now(), 100);
}

TEST(Simulator, RunUntilAdvancesClockWithNoEvents)
{
    Simulator sim;
    EXPECT_FALSE(sim.RunUntil(1000));
    EXPECT_EQ(sim.Now(), 1000);
}

TEST(Simulator, RunWhileNotStopsWhenPredicateHolds)
{
    Simulator sim;
    int count = 0;
    for (int i = 0; i < 10; ++i) sim.Schedule(i + 1, [&]() { ++count; });
    EXPECT_TRUE(sim.RunWhileNot([&]() { return count >= 5; }));
    EXPECT_EQ(count, 5);
    EXPECT_TRUE(sim.PendingEvents() > 0);
}

TEST(Simulator, RunWhileNotReturnsFalseWhenQueueDrains)
{
    Simulator sim;
    sim.Schedule(1, []() {});
    EXPECT_FALSE(sim.RunWhileNot([]() { return false; }));
}

TEST(Simulator, EventsProcessedCounts)
{
    Simulator sim;
    for (int i = 0; i < 7; ++i) sim.Schedule(i, []() {});
    sim.Run();
    EXPECT_EQ(sim.events_processed(), 7u);
}

TEST(FifoResource, SerializesSubmissions)
{
    Simulator sim;
    FifoResource res(sim);
    std::vector<util::TimeNs> completions;
    res.Submit(100, [&]() { completions.push_back(sim.Now()); });
    res.Submit(50, [&]() { completions.push_back(sim.Now()); });
    res.Submit(25, [&]() { completions.push_back(sim.Now()); });
    sim.Run();
    ASSERT_EQ(completions.size(), 3u);
    EXPECT_EQ(completions[0], 100);
    EXPECT_EQ(completions[1], 150);
    EXPECT_EQ(completions[2], 175);
}

TEST(FifoResource, SubmitReturnsCompletionTime)
{
    Simulator sim;
    FifoResource res(sim);
    EXPECT_EQ(res.Submit(100, nullptr), 100);
    EXPECT_EQ(res.Submit(50, nullptr), 150);
}

TEST(FifoResource, SubmitAfterDelaysStart)
{
    Simulator sim;
    FifoResource res(sim);
    EXPECT_EQ(res.SubmitAfter(500, 100, nullptr), 600);
    // Queued work already extends past 600: chained normally.
    EXPECT_EQ(res.SubmitAfter(0, 100, nullptr), 700);
}

TEST(FifoResource, TracksBusyAndUtilization)
{
    Simulator sim;
    FifoResource res(sim);
    res.Submit(100, nullptr);
    EXPECT_TRUE(res.Busy());
    sim.Run();
    EXPECT_FALSE(res.Busy());
    EXPECT_EQ(res.busy_time(), 100);
    sim.RunUntil(200);
    EXPECT_DOUBLE_EQ(res.Utilization(200), 0.5);
}

TEST(FifoResource, IdleGapDoesNotAccumulateBusyTime)
{
    Simulator sim;
    FifoResource res(sim);
    res.Submit(10, nullptr);
    sim.RunUntil(1000);
    res.Submit(10, nullptr);
    sim.Run();
    EXPECT_EQ(res.busy_time(), 20);
    EXPECT_EQ(sim.Now(), 1010);
}

}  // namespace
}  // namespace sdf::sim
