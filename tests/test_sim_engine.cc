/**
 * @file
 * Engine-equivalence and fast-path tests for the event core.
 *
 * The calendar engine must be indistinguishable from the reference heap
 * engine in dispatch order — the repo's byte-identical-exports guarantee
 * rests on it (DESIGN.md §14). These tests drive both engines through
 * identical randomized schedules and through the calendar queue's edge
 * geometry (bucket boundaries, window rotation, cancel storms), plus the
 * move-only Callback and BlockPool primitives the fast path rides on.
 */
#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <vector>

#include "sim/callback.h"
#include "sim/pool.h"
#include "sim/simulator.h"

namespace sdf::sim {
namespace {

/** One engine's observable dispatch history. */
struct Fired
{
    std::vector<int> order;
    std::vector<TimeNs> times;
};

TEST(EngineCross, RandomizedScheduleMatchesReferenceHeap)
{
    // 10k mixed schedules — immediate, near (within one bucket), mid
    // (across buckets), far (overflow heap) — driven identically into
    // both engines; the pop order must match event for event.
    std::mt19937_64 rng(0xC0FFEEu);
    struct Op
    {
        TimeNs delay;
        int tag;
    };
    std::vector<Op> ops;
    ops.reserve(10000);
    for (int i = 0; i < 10000; ++i) {
        const int kind = static_cast<int>(rng() % 4);
        TimeNs d = 0;
        if (kind == 1) d = static_cast<TimeNs>(rng() % 8000);        // bucket
        if (kind == 2) d = static_cast<TimeNs>(rng() % 2000000);     // wheel
        if (kind == 3) d = static_cast<TimeNs>(rng() % 400000000);   // far
        ops.push_back(Op{d, i});
    }

    auto run = [&ops](EngineKind kind) {
        Simulator sim(kind);
        Fired fired;
        // Feed in waves from inside the run so the clock moves between
        // insertions (exercises rotation with a non-zero now).
        const size_t wave = 500;
        for (size_t base = 0; base < ops.size(); base += wave) {
            sim.Schedule(static_cast<TimeNs>(base) * 1000,
                         [&sim, &ops, &fired, base, wave]() {
                             const size_t end =
                                 std::min(base + wave, ops.size());
                             for (size_t i = base; i < end; ++i) {
                                 sim.Schedule(ops[i].delay,
                                              [&fired, &sim, tag = ops[i].tag]() {
                                                  fired.order.push_back(tag);
                                                  fired.times.push_back(
                                                      sim.Now());
                                              });
                             }
                         });
        }
        sim.Run();
        return fired;
    };

    const Fired heap = run(EngineKind::kHeap);
    const Fired cal = run(EngineKind::kCalendar);
    ASSERT_EQ(heap.order.size(), cal.order.size());
    EXPECT_EQ(heap.order, cal.order);
    EXPECT_EQ(heap.times, cal.times);
}

TEST(EngineCross, CancelStormMatchesReferenceHeap)
{
    // Schedule/cancel churn: every third event is cancelled, some twice,
    // some after adjacent events already fired. Both engines must agree
    // on the survivors and their order.
    auto run = [](EngineKind kind) {
        Simulator sim(kind);
        Fired fired;
        std::vector<EventId> ids;
        std::mt19937_64 rng(7);
        for (int i = 0; i < 3000; ++i) {
            const TimeNs d = static_cast<TimeNs>(rng() % 500000);
            ids.push_back(sim.Schedule(d, [&fired, &sim, i]() {
                fired.order.push_back(i);
                fired.times.push_back(sim.Now());
            }));
        }
        for (size_t i = 0; i < ids.size(); i += 3) sim.Cancel(ids[i]);
        for (size_t i = 0; i < ids.size(); i += 7) sim.Cancel(ids[i]);
        sim.Run();
        // Cancelling after the queue drained must be a harmless no-op.
        for (EventId id : ids) sim.Cancel(id);
        return fired;
    };
    const Fired heap = run(EngineKind::kHeap);
    const Fired cal = run(EngineKind::kCalendar);
    EXPECT_EQ(heap.order, cal.order);
    EXPECT_EQ(heap.times, cal.times);
}

TEST(EngineCross, PostInterleavesExactlyLikeZeroDelaySchedule)
{
    // A Post() and a Schedule(0, ...) issued in some interleaving must
    // dispatch in issue order on both engines.
    auto run = [](EngineKind kind) {
        Simulator sim(kind);
        std::vector<int> order;
        sim.Schedule(10, [&]() {
            sim.Post([&]() { order.push_back(0); });
            sim.Schedule(0, [&]() { order.push_back(1); });
            sim.Post([&]() { order.push_back(2); });
            sim.Schedule(0, [&]() { order.push_back(3); });
        });
        sim.Run();
        return order;
    };
    const std::vector<int> want = {0, 1, 2, 3};
    EXPECT_EQ(run(EngineKind::kHeap), want);
    EXPECT_EQ(run(EngineKind::kCalendar), want);
}

TEST(CalendarQueue, EqualTimestampFifoAcrossBucketBoundaries)
{
    // Events scheduled for the same instant from different "homes" —
    // current bucket, a future bucket, the overflow heap (via window
    // rotation) — still fire in scheduling order.
    Simulator::CalendarConfig cfg;
    cfg.bucket_width_log2 = 4;  // 16 ns buckets...
    cfg.bucket_count = 8;       // ...128 ns window: rotation is cheap to hit.
    Simulator sim(EngineKind::kCalendar, cfg);
    std::vector<int> order;
    const TimeNs t = 1000;  // Far outside the initial window.
    for (int i = 0; i < 64; ++i) {
        sim.ScheduleAt(t, [&order, i]() { order.push_back(i); });
    }
    // Same timestamp, scheduled later, after the clock has moved: still
    // fires after the first 64.
    sim.Schedule(1, [&sim, &order, t]() {
        sim.ScheduleAt(t, [&order]() { order.push_back(64); });
    });
    sim.Run();
    ASSERT_EQ(order.size(), 65u);
    for (int i = 0; i < 65; ++i) EXPECT_EQ(order[i], i);
}

TEST(CalendarQueue, FarFutureOverflowMigration)
{
    // Far-future events park in the overflow heap, then migrate into the
    // wheel when the window rotates; ordering and timestamps must hold
    // across several rotations.
    Simulator::CalendarConfig cfg;
    cfg.bucket_width_log2 = 6;  // 64 ns buckets.
    cfg.bucket_count = 16;      // 1 KiB-ns window.
    Simulator sim(EngineKind::kCalendar, cfg);
    std::vector<TimeNs> fire_times;
    // Spread over ~100 windows, inserted in a scrambled order.
    std::vector<TimeNs> whens;
    for (int i = 0; i < 200; ++i)
        whens.push_back(static_cast<TimeNs>((i * 7919) % 100000));
    for (TimeNs w : whens) {
        sim.ScheduleAt(w, [&fire_times, &sim]() {
            fire_times.push_back(sim.Now());
        });
    }
    sim.Run();
    ASSERT_EQ(fire_times.size(), whens.size());
    std::vector<TimeNs> sorted = whens;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(fire_times, sorted);
}

TEST(CalendarQueue, PendingEventsTracksCancellation)
{
    Simulator sim(EngineKind::kCalendar);
    std::vector<EventId> ids;
    for (int i = 0; i < 100; ++i) {
        ids.push_back(sim.Schedule(1000 + i, []() {}));
    }
    EXPECT_EQ(sim.PendingEvents(), 100u);
    for (int i = 0; i < 50; ++i) sim.Cancel(ids[i]);
    EXPECT_EQ(sim.PendingEvents(), 50u);
    // Double-cancel and stale ids change nothing.
    for (int i = 0; i < 50; ++i) sim.Cancel(ids[i]);
    sim.Cancel(ids[60] + 1);  // Wrong generation.
    EXPECT_EQ(sim.PendingEvents(), 50u);
    sim.Post([]() {});
    EXPECT_EQ(sim.PendingEvents(), 51u);  // Posted work counts as pending.
    sim.Run();
    EXPECT_EQ(sim.PendingEvents(), 0u);
    EXPECT_EQ(sim.events_processed(), 51u);
}

TEST(CalendarQueue, RescheduleStormRecyclesSlots)
{
    // Cancel-and-reschedule loops (the hedge-timer pattern) must not grow
    // state: the slot pool recycles, tombstones drain, and the final
    // timer fires exactly once.
    Simulator sim(EngineKind::kCalendar);
    int fired = 0;
    EventId timer = kInvalidEvent;
    for (int i = 0; i < 10000; ++i) {
        if (timer != kInvalidEvent) sim.Cancel(timer);
        timer = sim.Schedule(5000 + i, [&fired]() { ++fired; });
    }
    EXPECT_EQ(sim.PendingEvents(), 1u);
    sim.Run();
    EXPECT_EQ(fired, 1);
}

TEST(Callback, MoveOnlyCapturesWork)
{
    // The whole point of the SBO callback: move-only state rides in the
    // closure with no shared_ptr detour.
    Simulator sim(EngineKind::kCalendar);
    auto payload = std::make_unique<int>(41);
    int got = 0;
    sim.Schedule(10, [p = std::move(payload), &got]() { got += *p + 1; });
    auto posted = std::make_unique<int>(7);
    sim.Post([p = std::move(posted), &got]() { got += *p; });
    sim.Run();
    EXPECT_EQ(got, 49);
}

TEST(Callback, LargeClosureFallsBackToHeap)
{
    // Closures past the inline budget still work (one heap allocation).
    struct Big
    {
        unsigned char blob[200];
    };
    Big big{};
    big.blob[0] = 3;
    int got = 0;
    Callback cb = [big, &got]() { got = big.blob[0]; };
    Callback moved = std::move(cb);
    moved();
    EXPECT_EQ(got, 3);
    EXPECT_FALSE(static_cast<bool>(cb));  // NOLINT(bugprone-use-after-move)
}

TEST(Callback, CancelDestroysCaptureImmediately)
{
    // Cancelling an event releases the closure's resources right away,
    // not when the tombstone pops: the shared_ptr count proves it.
    Simulator sim(EngineKind::kCalendar);
    auto tracker = std::make_shared<int>(1);
    const EventId id =
        sim.Schedule(1000, [keep = tracker]() { (void)*keep; });
    EXPECT_EQ(tracker.use_count(), 2);
    sim.Cancel(id);
    EXPECT_EQ(tracker.use_count(), 1);
    sim.Run();
}

TEST(BlockPool, RecyclesBlocksThroughFreeList)
{
    BlockPool pool;
    void *a = pool.Alloc(24);
    void *b = pool.Alloc(24);
    EXPECT_NE(a, b);
    pool.Free(a);
    void *c = pool.Alloc(24);
    EXPECT_EQ(c, a);  // LIFO recycling.
    pool.Free(b);
    pool.Free(c);
    EXPECT_EQ(pool.capacity(), BlockPool::kSlabBlocks);
}

TEST(BlockPool, PooledSharedKeepsValueSemantics)
{
    BlockPool pool;
    std::weak_ptr<int> observer;
    {
        auto p = MakePooledShared<int>(pool, 42);
        EXPECT_EQ(*p, 42);
        observer = p;
        auto q = p;
        EXPECT_EQ(observer.use_count(), 2);
    }
    EXPECT_TRUE(observer.expired());
    // The node is back on the free list: the next allocation reuses it.
    auto r = MakePooledShared<int>(pool, 7);
    EXPECT_EQ(*r, 7);
    EXPECT_EQ(pool.capacity(), BlockPool::kSlabBlocks);
}

}  // namespace
}  // namespace sdf::sim
