/**
 * @file
 * Unit tests for the conventional SSD baseline: capacity math, read/write
 * paths, the DRAM write-back cache, garbage collection and write
 * amplification, parity overhead, trim, and preconditioning.
 */
#include <gtest/gtest.h>

#include <memory>

#include "sim/simulator.h"
#include "ssd/conventional_ssd.h"
#include "util/fingerprint.h"

namespace sdf::ssd {
namespace {

ConventionalSsdConfig
TinyConfig(bool payloads = false)
{
    ConventionalSsdConfig c;
    c.name = "tiny";
    c.flash.geometry = nand::TinyTestGeometry();
    c.flash.geometry.channels = 4;
    c.flash.geometry.blocks_per_plane = 24;
    c.flash.timing = nand::FastTestTiming();
    c.flash.store_payloads = payloads;
    c.link = controller::UnlimitedLinkSpec();
    c.op_ratio = 0.25;
    c.stripe_bytes = c.flash.geometry.page_size;
    c.parity = false;
    c.dram_cache_bytes = 512 * util::kKiB;
    c.gc_low_watermark = 4;
    c.gc_high_watermark = 8;
    c.fw_cost_per_read_request = 0;
    c.fw_cost_per_write_request = 0;
    c.fw_cost_read_page = util::UsToNs(1);
    c.fw_cost_write_page = util::UsToNs(1);
    return c;
}

uint32_t
PageSize(const ConventionalSsd &dev)
{
    return dev.config().flash.geometry.page_size;
}

void
WriteAll(sim::Simulator &sim, ConventionalSsd &dev, uint64_t offset,
         uint64_t length, const uint8_t *data = nullptr)
{
    bool done = false;
    dev.Write(offset, length, [&](bool) { done = true; }, data);
    sim.RunWhileNot([&]() { return done; });
}

TEST(ConventionalSsd, UserCapacityReflectsOverProvisioning)
{
    sim::Simulator sim;
    ConventionalSsdConfig cfg = TinyConfig();
    ConventionalSsd dev(sim, cfg);
    const double ratio = static_cast<double>(dev.user_capacity()) /
                         static_cast<double>(dev.raw_capacity());
    // 25 % OP plus frontier/GC reserves: well below 0.75, above 0.4.
    EXPECT_LT(ratio, 0.75);
    EXPECT_GT(ratio, 0.40);
}

TEST(ConventionalSsd, ParityCostsOneChannelWorth)
{
    sim::Simulator sim;
    ConventionalSsdConfig with = TinyConfig();
    with.parity = true;
    ConventionalSsdConfig without = TinyConfig();
    ConventionalSsd dev_with(sim, with);
    ConventionalSsd dev_without(sim, without);
    const double expected = 1.0 - 1.0 / with.flash.geometry.channels;
    const double actual =
        static_cast<double>(dev_with.user_capacity()) /
        static_cast<double>(dev_without.user_capacity());
    EXPECT_NEAR(actual, expected, 0.05);
}

TEST(ConventionalSsd, ReadAfterWriteReturnsData)
{
    sim::Simulator sim;
    ConventionalSsd dev(sim, TinyConfig(/*payloads=*/true));
    const uint32_t page = PageSize(dev);
    const auto payload = util::MakeDeterministicPayload(4 * page, 42);
    WriteAll(sim, dev, 0, payload.size(), payload.data());

    std::vector<uint8_t> out;
    bool ok = false;
    dev.Read(0, payload.size(), [&](bool s) { ok = s; }, &out);
    sim.Run();
    EXPECT_TRUE(ok);
    EXPECT_EQ(out, payload);
}

TEST(ConventionalSsd, ReadOfNeverWrittenRangeIsZeros)
{
    sim::Simulator sim;
    ConventionalSsd dev(sim, TinyConfig(/*payloads=*/true));
    const uint32_t page = PageSize(dev);
    std::vector<uint8_t> out;
    bool ok = false;
    dev.Read(8 * page, page, [&](bool s) { ok = s; }, &out);
    sim.Run();
    EXPECT_TRUE(ok);
    for (uint8_t b : out) EXPECT_EQ(b, 0);
}

TEST(ConventionalSsd, OverwriteReturnsNewestData)
{
    sim::Simulator sim;
    ConventionalSsd dev(sim, TinyConfig(/*payloads=*/true));
    const uint32_t page = PageSize(dev);
    const auto v1 = util::MakeDeterministicPayload(page, 1);
    const auto v2 = util::MakeDeterministicPayload(page, 2);
    WriteAll(sim, dev, 0, page, v1.data());
    WriteAll(sim, dev, 0, page, v2.data());

    std::vector<uint8_t> out;
    dev.Read(0, page, nullptr, &out);
    sim.Run();
    EXPECT_EQ(out, v2);
}

TEST(ConventionalSsd, MisalignedOrOversizeRequestsFail)
{
    sim::Simulator sim;
    ConventionalSsd dev(sim, TinyConfig());
    const uint32_t page = PageSize(dev);
    int failures = 0;
    auto expect_fail = [&](bool s) {
        if (!s) ++failures;
    };
    dev.Read(1, page, expect_fail);
    dev.Read(0, page - 1, expect_fail);
    dev.Read(dev.user_capacity(), page, expect_fail);
    dev.Write(0, 0, expect_fail);
    sim.Run();
    EXPECT_EQ(failures, 4);
}

TEST(ConventionalSsd, WriteBackCacheAcksBeforeDrain)
{
    sim::Simulator sim;
    ConventionalSsdConfig cfg = TinyConfig();
    cfg.flash.timing.program_page = util::MsToNs(5);  // Slow drain.
    ConventionalSsd dev(sim, cfg);
    const uint32_t page = PageSize(dev);

    util::TimeNs acked_at = 0;
    dev.Write(0, page, [&](bool) { acked_at = sim.Now(); });
    sim.Run();
    // Acked long before the 5 ms program would complete... and the drain
    // did eventually run.
    EXPECT_LT(acked_at, util::MsToNs(5));
    EXPECT_EQ(dev.stats().host_pages_written, 1u);
    EXPECT_EQ(dev.CacheUsed(), 0u);
}

TEST(ConventionalSsd, CacheFullBlocksAdmission)
{
    sim::Simulator sim;
    ConventionalSsdConfig cfg = TinyConfig();
    cfg.dram_cache_bytes = 8 * cfg.flash.geometry.page_size;
    cfg.flash.timing.program_page = util::MsToNs(1);
    ConventionalSsd dev(sim, cfg);
    const uint32_t page = PageSize(dev);

    // Fill the cache, then issue one more write: its ack must wait for
    // drain progress.
    util::TimeNs last_ack = 0;
    for (int i = 0; i < 16; ++i) {
        dev.Write(uint64_t{static_cast<uint32_t>(i)} * page, page,
                  [&](bool) { last_ack = sim.Now(); });
    }
    sim.Run();
    EXPECT_GT(last_ack, util::MsToNs(1));
}

TEST(ConventionalSsd, DirtyCacheHitServedWithoutFlashRead)
{
    sim::Simulator sim;
    ConventionalSsdConfig cfg = TinyConfig(/*payloads=*/true);
    cfg.flash.timing.program_page = util::MsToNs(50);  // Keep it dirty.
    ConventionalSsd dev(sim, cfg);
    const uint32_t page = PageSize(dev);
    const auto payload = util::MakeDeterministicPayload(page, 3);

    bool write_acked = false;
    dev.Write(0, page, [&](bool) { write_acked = true; }, payload.data());
    sim.RunWhileNot([&]() { return write_acked; });

    std::vector<uint8_t> out;
    bool ok = false;
    dev.Read(0, page, [&](bool s) { ok = s; }, &out);
    sim.RunWhileNot([&]() { return ok; });
    EXPECT_EQ(out, payload);
    EXPECT_EQ(dev.stats().cache_hit_pages, 1u);
}

TEST(ConventionalSsd, SteadyRandomWritesTriggerGc)
{
    sim::Simulator sim;
    ConventionalSsdConfig cfg = TinyConfig();
    ConventionalSsd dev(sim, cfg);
    const uint32_t page = PageSize(dev);
    const uint64_t pages = dev.user_capacity() / page;

    // Sequential fill, then random overwrites of 2x the logical space.
    dev.PreconditionFill(1.0);
    util::Rng rng(5);
    int completed = 0;
    const int total = static_cast<int>(2 * pages);
    for (int i = 0; i < total; ++i) {
        dev.Write(rng.NextBelow(pages) * page, page,
                  [&](bool) { ++completed; });
    }
    sim.Run();
    EXPECT_EQ(completed, total);
    EXPECT_GT(dev.stats().gc_erases, 0u);
    EXPECT_GT(dev.stats().gc_pages_moved, 0u);
    // Write amplification above 1 but bounded.
    EXPECT_GT(dev.stats().WriteAmplification(), 1.0);
    EXPECT_LT(dev.stats().WriteAmplification(), 30.0);
}

TEST(ConventionalSsd, DataSurvivesGarbageCollection)
{
    sim::Simulator sim;
    ConventionalSsdConfig cfg = TinyConfig(/*payloads=*/true);
    ConventionalSsd dev(sim, cfg);
    const uint32_t page = PageSize(dev);
    const uint64_t pages = dev.user_capacity() / page;

    // Write a known pattern everywhere (fills the device), then rewrite a
    // hot subset repeatedly to force GC to migrate the cold pages.
    for (uint64_t p = 0; p < pages; ++p) {
        const auto v = util::MakeDeterministicPayload(page, p);
        WriteAll(sim, dev, p * page, page, v.data());
    }
    util::Rng rng(7);
    for (int i = 0; i < static_cast<int>(pages); ++i) {
        const uint64_t p = rng.NextBelow(pages / 4);  // Hot quarter.
        const auto v = util::MakeDeterministicPayload(page, 1000000 + p);
        WriteAll(sim, dev, p * page, page, v.data());
    }
    sim.Run();
    ASSERT_GT(dev.stats().gc_pages_moved, 0u);

    // Cold pages must still read back their original contents.
    for (uint64_t p = pages / 4; p < pages; p += 7) {
        std::vector<uint8_t> out;
        bool ok = false;
        dev.Read(p * page, page, [&](bool s) { ok = s; }, &out);
        sim.Run();
        ASSERT_TRUE(ok);
        const auto expected = util::MakeDeterministicPayload(page, p);
        ASSERT_EQ(out, expected) << "page " << p;
    }
}

TEST(ConventionalSsd, LowerOpMeansMoreWriteAmplification)
{
    auto run_wa = [](double op) {
        sim::Simulator sim;
        ConventionalSsdConfig cfg = TinyConfig();
        cfg.flash.geometry.blocks_per_plane = 32;
        cfg.op_ratio = op;
        ConventionalSsd dev(sim, cfg);
        const uint32_t page = PageSize(dev);
        const uint64_t pages = dev.user_capacity() / page;
        dev.PreconditionFill(1.0);
        util::Rng rng(5);
        for (uint64_t i = 0; i < 3 * pages; ++i) {
            dev.Write(rng.NextBelow(pages) * page, page, nullptr);
        }
        sim.Run();
        return dev.stats().WriteAmplification();
    };
    const double wa_low_op = run_wa(0.07);
    const double wa_high_op = run_wa(0.45);
    EXPECT_GT(wa_low_op, wa_high_op);
}

TEST(ConventionalSsd, TrimInvalidatesMappings)
{
    sim::Simulator sim;
    ConventionalSsd dev(sim, TinyConfig(/*payloads=*/true));
    const uint32_t page = PageSize(dev);
    const auto payload = util::MakeDeterministicPayload(page, 9);
    WriteAll(sim, dev, 0, page, payload.data());
    sim.Run();
    dev.Trim(0, page);

    std::vector<uint8_t> out;
    dev.Read(0, page, nullptr, &out);
    sim.Run();
    for (uint8_t b : out) EXPECT_EQ(b, 0);
}

TEST(ConventionalSsd, PreconditionFillMapsLogicalSpace)
{
    sim::Simulator sim;
    ConventionalSsd dev(sim, TinyConfig());
    dev.PreconditionFill(0.5);
    EXPECT_EQ(sim.Now(), 0);  // No simulated time consumed.
    // Roughly half of each channel's data lpns mapped.
    const uint32_t page = PageSize(dev);
    bool ok = false;
    dev.Read(0, page, [&](bool s) { ok = s; });
    sim.Run();
    EXPECT_TRUE(ok);
}

TEST(ConventionalSsd, QueueDepthLimitsAdmission)
{
    sim::Simulator sim;
    ConventionalSsdConfig cfg = TinyConfig();
    cfg.max_outstanding = 2;
    ConventionalSsd dev(sim, cfg);
    dev.PreconditionFill(0.5);
    const uint32_t page = PageSize(dev);
    int completed = 0;
    for (int i = 0; i < 10; ++i) {
        dev.Read(uint64_t{static_cast<uint32_t>(i)} * page, page,
                 [&](bool) { ++completed; });
    }
    sim.Run();
    EXPECT_EQ(completed, 10);  // All served eventually, through the queue.
}

TEST(ConventionalSsd, GcPolicyCostBenefitAlsoConverges)
{
    sim::Simulator sim;
    ConventionalSsdConfig cfg = TinyConfig();
    cfg.gc_policy = GcPolicy::kCostBenefit;
    ConventionalSsd dev(sim, cfg);
    const uint32_t page = PageSize(dev);
    const uint64_t pages = dev.user_capacity() / page;
    dev.PreconditionFill(1.0);
    util::Rng rng(5);
    int completed = 0;
    for (uint64_t i = 0; i < 2 * pages; ++i) {
        dev.Write(rng.NextBelow(pages) * page, page, [&](bool) { ++completed; });
    }
    sim.Run();
    EXPECT_EQ(completed, static_cast<int>(2 * pages));
    EXPECT_GT(dev.stats().gc_erases, 0u);
}

TEST(ConventionalSsd, ParityWritesTrackDataWrites)
{
    sim::Simulator sim;
    ConventionalSsdConfig cfg = TinyConfig();
    cfg.parity = true;
    ConventionalSsd dev(sim, cfg);
    const uint32_t page = PageSize(dev);
    const uint32_t channels = cfg.flash.geometry.channels;
    const uint64_t pages = dev.user_capacity() / page;
    int completed = 0;
    for (uint64_t p = 0; p < pages / 2; ++p) {
        dev.Write(p * page, page, [&](bool) { ++completed; });
    }
    sim.Run();
    // One parity page per (channels - 1) data pages.
    const double expected =
        static_cast<double>(dev.stats().host_pages_written) / (channels - 1);
    EXPECT_NEAR(static_cast<double>(dev.stats().parity_pages_written),
                expected, expected * 0.2 + 2);
}


TEST(ConventionalSsd, StaticWearLevelingMigratesColdBlocks)
{
    // With SWL on, cold (fully valid, low-erase-count) blocks get picked
    // as GC victims on the SWL cadence and their data migrates.
    auto run = [](bool swl) {
        sim::Simulator sim;
        ConventionalSsdConfig cfg = TinyConfig();
        cfg.flash.geometry.blocks_per_plane = 32;
        cfg.static_wear_leveling = swl;
        cfg.swl_period = 6;
        ConventionalSsd dev(sim, cfg);
        const uint32_t page = PageSize(dev);
        const uint64_t pages = dev.user_capacity() / page;
        dev.PreconditionFill(1.0);
        // Hammer a hot quarter; the cold three quarters never rewritten.
        util::Rng rng(9);
        for (uint64_t i = 0; i < 6 * pages; ++i) {
            dev.Write(rng.NextBelow(pages / 4) * page, page, nullptr);
        }
        sim.Run();
        return std::pair{dev.stats().swl_migrations,
                         dev.stats().gc_pages_moved};
    };
    const auto with = run(true);
    const auto without = run(false);
    EXPECT_GT(with.first, 0u);
    EXPECT_EQ(without.first, 0u);
    // SWL moves extra (cold, fully valid) data.
    EXPECT_GT(with.second, without.second);
}

TEST(ConventionalSsd, RandomPreconditionProducesFragmentation)
{
    sim::Simulator sim;
    ConventionalSsdConfig cfg = TinyConfig();
    cfg.flash.geometry.blocks_per_plane = 32;
    ConventionalSsd dev(sim, cfg);
    dev.PreconditionFillRandom(1.0);
    EXPECT_EQ(sim.Now(), 0);

    // Immediately after, random writes see steady-state-like WA > 1.5.
    const uint32_t page = PageSize(dev);
    const uint64_t pages = dev.user_capacity() / page;
    util::Rng rng(3);
    for (uint64_t i = 0; i < pages; ++i) {
        dev.Write(rng.NextBelow(pages) * page, page, nullptr);
    }
    sim.Run();
    EXPECT_GT(dev.stats().WriteAmplification(), 1.5);
    // And the data is still readable.
    bool ok = false;
    dev.Read(0, page, [&](bool s) { ok = s; });
    sim.Run();
    EXPECT_TRUE(ok);
}

}  // namespace
}  // namespace sdf::ssd
