/**
 * @file
 * Unit tests for the utility layer: units, RNG, histogram, throughput
 * meter, fingerprints, and table printing.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/fingerprint.h"
#include "util/histogram.h"
#include "util/latency_recorder.h"
#include "util/rng.h"
#include "util/table_printer.h"
#include "util/throughput_meter.h"
#include "util/units.h"

namespace sdf::util {
namespace {

// ---------------------------------------------------------------------------
// Units
// ---------------------------------------------------------------------------

TEST(Units, TimeConversionsRoundTrip)
{
    EXPECT_EQ(UsToNs(1), 1000);
    EXPECT_EQ(MsToNs(1), 1000000);
    EXPECT_EQ(SecToNs(1), 1000000000);
    EXPECT_DOUBLE_EQ(NsToMs(MsToNs(383)), 383.0);
    EXPECT_DOUBLE_EQ(NsToUs(UsToNs(12.9)), 12.9);
}

TEST(Units, TransferTimeMatchesRate)
{
    // 40 MB at 40 MB/s = 1 s.
    EXPECT_EQ(TransferTimeNs(40 * kMB, 40e6), kNsPerSec);
    // Zero rate means an infinitely fast link.
    EXPECT_EQ(TransferTimeNs(12345, 0.0), 0);
}

TEST(Units, BandwidthComputation)
{
    EXPECT_DOUBLE_EQ(BandwidthMBps(100 * kMB, SecToNs(1)), 100.0);
    EXPECT_DOUBLE_EQ(BandwidthMBps(1, 0), 0.0);
}

TEST(Units, FormatBytesPicksUnits)
{
    EXPECT_EQ(FormatBytes(704 * kGB), "704 GB");
    EXPECT_EQ(FormatBytes(8 * kMB), "8 MB");
    EXPECT_EQ(FormatBytes(8 * kKiB), "8.0 KiB");
    EXPECT_EQ(FormatBytes(100), "100 B");
}

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(Rng, DeterministicForEqualSeeds)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.Next() == b.Next()) ++same;
    }
    EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowStaysInBounds)
{
    Rng rng(7);
    for (uint64_t bound : {1ULL, 2ULL, 44ULL, 1000000007ULL}) {
        for (int i = 0; i < 200; ++i) EXPECT_LT(rng.NextBelow(bound), bound);
    }
}

TEST(Rng, NextBelowCoversRange)
{
    Rng rng(11);
    std::set<uint64_t> seen;
    for (int i = 0; i < 2000; ++i) seen.insert(rng.NextBelow(44));
    EXPECT_EQ(seen.size(), 44u);
}

TEST(Rng, NextInRangeInclusive)
{
    Rng rng(3);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const int64_t v = rng.NextInRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(5);
    for (int i = 0; i < 1000; ++i) {
        const double d = rng.NextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, BernoulliApproximatesProbability)
{
    Rng rng(9);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) hits += rng.NextBool(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, ExponentialHasRequestedMean)
{
    Rng rng(13);
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) sum += rng.NextExponential(50.0);
    EXPECT_NEAR(sum / n, 50.0, 2.0);
}

TEST(Rng, ForkProducesIndependentStream)
{
    Rng parent(1);
    Rng child = parent.Fork();
    EXPECT_NE(parent.Next(), child.Next());
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

TEST(Histogram, EmptyIsAllZero)
{
    Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.min(), 0);
    EXPECT_EQ(h.max(), 0);
    EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
    EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);
}

TEST(Histogram, TracksExactSmallValues)
{
    Histogram h;
    for (int v : {1, 2, 3, 4, 5}) h.Add(v);
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.min(), 1);
    EXPECT_EQ(h.max(), 5);
    EXPECT_DOUBLE_EQ(h.Mean(), 3.0);
}

TEST(Histogram, QuantilesAreMonotonic)
{
    Histogram h;
    Rng rng(17);
    for (int i = 0; i < 10000; ++i)
        h.Add(static_cast<int64_t>(rng.NextBelow(1000000)));
    double prev = -1;
    for (double q = 0.0; q <= 1.0; q += 0.05) {
        const double v = h.Quantile(q);
        EXPECT_GE(v, prev);
        prev = v;
    }
    EXPECT_LE(h.Quantile(1.0), static_cast<double>(h.max()));
}

TEST(Histogram, QuantileRelativeErrorBounded)
{
    Histogram h;
    // Uniform 0..99999: p50 should be ~50000 within bucket error (~7 %).
    for (int i = 0; i < 100000; ++i) h.Add(i);
    EXPECT_NEAR(h.Quantile(0.5), 50000, 5000);
    EXPECT_NEAR(h.Quantile(0.99), 99000, 8000);
}

TEST(Histogram, NegativeClampsToZero)
{
    Histogram h;
    h.Add(-5);
    EXPECT_EQ(h.min(), 0);
    EXPECT_EQ(h.count(), 1u);
}

TEST(Histogram, MergeCombinesCounts)
{
    Histogram a, b;
    for (int i = 0; i < 100; ++i) a.Add(10);
    for (int i = 0; i < 100; ++i) b.Add(1000);
    a.Merge(b);
    EXPECT_EQ(a.count(), 200u);
    EXPECT_EQ(a.min(), 10);
    EXPECT_EQ(a.max(), 1000);
    EXPECT_DOUBLE_EQ(a.Mean(), 505.0);
}

TEST(Histogram, StdDevMatchesKnownDistribution)
{
    Histogram h;
    h.Add(10);
    h.Add(20);
    EXPECT_NEAR(h.StdDev(), 7.07, 0.01);
}

TEST(Histogram, ResetClears)
{
    Histogram h;
    h.Add(5);
    h.Reset();
    EXPECT_EQ(h.count(), 0u);
}

TEST(Histogram, DeltaRecoversWindowBetweenSnapshots)
{
    Histogram prev;
    for (int i = 0; i < 100; ++i) prev.Add(10);
    Histogram cur = prev;
    for (int i = 0; i < 100; ++i) cur.Add(1000);
    const Histogram d = Histogram::Delta(prev, cur);
    EXPECT_EQ(d.count(), 100u);
    EXPECT_NEAR(d.Mean(), 1000.0, 1e-9);
    EXPECT_NEAR(d.Quantile(0.5), 1000.0, 1000.0 / 16.0 + 1);
}

TEST(Histogram, DeltaSingleSampleWindowIsExactAtEveryQuantile)
{
    // Regression: a window containing exactly one sample used to report
    // mid-bucket interpolations (up to one bucket width off) for every
    // quantile. The sum difference recovers the sample exactly, so the
    // delta must pin min/max/quantiles to it.
    Histogram prev;
    for (int i = 0; i < 50; ++i) prev.Add(123456);
    Histogram cur = prev;
    cur.Add(99999);  // The only sample in the window.
    const Histogram d = Histogram::Delta(prev, cur);
    ASSERT_EQ(d.count(), 1u);
    EXPECT_EQ(d.min(), 99999);
    EXPECT_EQ(d.max(), 99999);
    for (double q : {0.0, 0.5, 0.99, 1.0}) {
        EXPECT_DOUBLE_EQ(d.Quantile(q), 99999.0) << "q=" << q;
    }
}

TEST(Histogram, DeltaWithResetInBetweenReturnsCurrent)
{
    Histogram prev;
    prev.Add(500);
    Histogram cur;  // Fresh (simulates a Reset between snapshots).
    cur.Add(7);
    const Histogram d = Histogram::Delta(prev, cur);
    EXPECT_EQ(d.count(), 1u);
    EXPECT_EQ(d.min(), 7);
}

// ---------------------------------------------------------------------------
// ThroughputMeter / LatencyRecorder
// ---------------------------------------------------------------------------

TEST(ThroughputMeter, ComputesMeanBandwidth)
{
    ThroughputMeter m;
    m.Start(0);
    m.Account(SecToNs(1), 100 * kMB);
    m.Account(SecToNs(2), 100 * kMB);
    EXPECT_DOUBLE_EQ(m.MBps(SecToNs(2)), 100.0);
    EXPECT_EQ(m.operations(), 2u);
}

TEST(ThroughputMeter, WindowSeriesCapturesRate)
{
    ThroughputMeter m(SecToNs(1));
    m.Start(0);
    for (int s = 0; s < 5; ++s) {
        m.Account(SecToNs(s) + MsToNs(500), 50 * kMB);
    }
    m.Account(SecToNs(5), 0);  // Roll the final windows.
    ASSERT_GE(m.window_series().size(), 4u);
    EXPECT_DOUBLE_EQ(m.window_series()[0], 50.0);
}

TEST(LatencyRecorder, KeepsSeriesWhenAsked)
{
    LatencyRecorder r(true);
    r.Record(MsToNs(7));
    r.Record(MsToNs(650));
    ASSERT_EQ(r.series().size(), 2u);
    EXPECT_DOUBLE_EQ(r.MinMs(), 7.0);
    EXPECT_DOUBLE_EQ(r.MaxMs(), 650.0);
    EXPECT_NEAR(r.MeanMs(), 328.5, 0.01);
}

TEST(LatencyRecorder, DropsSeriesByDefault)
{
    LatencyRecorder r;
    r.Record(100);
    EXPECT_TRUE(r.series().empty());
    EXPECT_EQ(r.count(), 1u);
}

// ---------------------------------------------------------------------------
// Fingerprint
// ---------------------------------------------------------------------------

TEST(Fingerprint, StableAndSensitive)
{
    EXPECT_EQ(Fingerprint("sdf"), Fingerprint("sdf"));
    EXPECT_NE(Fingerprint("sdf"), Fingerprint("sdg"));
    EXPECT_NE(Fingerprint(""), Fingerprint("x"));
}

TEST(Fingerprint, DeterministicPayloadsRepeatable)
{
    const auto a = MakeDeterministicPayload(1000, 7);
    const auto b = MakeDeterministicPayload(1000, 7);
    const auto c = MakeDeterministicPayload(1000, 8);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
    EXPECT_EQ(Fingerprint(a.data(), a.size()), Fingerprint(b.data(), b.size()));
}

TEST(Fingerprint, PayloadTailBytesFilled)
{
    // Non-multiple-of-8 length must still fill the tail.
    const auto p = MakeDeterministicPayload(13, 3);
    bool any_nonzero = false;
    for (size_t i = 8; i < p.size(); ++i) any_nonzero |= p[i] != 0;
    EXPECT_TRUE(any_nonzero);
}

// ---------------------------------------------------------------------------
// TablePrinter
// ---------------------------------------------------------------------------

TEST(TablePrinter, AlignsColumns)
{
    TablePrinter t("Demo");
    t.SetHeader({"Device", "MB/s"});
    t.AddRow({"SDF", "1590"});
    t.AddRow({"Huawei Gen3", "1200"});
    const std::string s = t.ToString();
    EXPECT_NE(s.find("== Demo =="), std::string::npos);
    EXPECT_NE(s.find("Device"), std::string::npos);
    EXPECT_NE(s.find("Huawei Gen3"), std::string::npos);
}

TEST(TablePrinter, NumberFormatting)
{
    EXPECT_EQ(TablePrinter::Num(1.234, 2), "1.23");
    EXPECT_EQ(TablePrinter::Num(1.0, 0), "1");
    EXPECT_EQ(TablePrinter::Int(-42), "-42");
}

TEST(TablePrinter, HandlesRaggedRows)
{
    TablePrinter t("Ragged");
    t.SetHeader({"a", "b", "c"});
    t.AddRow({"only-one"});
    const std::string s = t.ToString();
    EXPECT_NE(s.find("only-one"), std::string::npos);
}

}  // namespace
}  // namespace sdf::util
