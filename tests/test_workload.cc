/**
 * @file
 * Tests for the workload layer: preloading, raw-device drivers'
 * measurement discipline, trace generation, and trace replay.
 */
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "blocklayer/block_layer.h"
#include "kv/patch_storage.h"
#include "kv/slice.h"
#include "sdf/sdf_device.h"
#include "sim/simulator.h"
#include "workload/kv_driver.h"
#include "workload/raw_device.h"
#include "workload/trace.h"

namespace sdf::workload {
namespace {

core::SdfConfig
FastSdf()
{
    core::SdfConfig c = core::BaiduSdfConfig(0.02);
    c.flash.timing = nand::FastTestTiming();
    return c;
}

// ---------------------------------------------------------------------------
// Preload
// ---------------------------------------------------------------------------

TEST(Preload, KeysAreUniqueAndSliceTagged)
{
    sim::Simulator sim;
    core::SdfDevice device(sim, FastSdf());
    blocklayer::BlockLayer layer(sim, device, {});
    kv::SdfPatchStorage storage(layer);
    kv::IdAllocator ids;
    kv::Slice a(sim, storage, ids, {});
    kv::Slice b(sim, storage, ids, {});

    const auto keys =
        PreloadSlices({&a, &b}, 64 * util::kMiB, 256 * util::kKiB);
    ASSERT_EQ(keys.size(), 2u);
    std::set<uint64_t> all;
    for (const auto &slice_keys : keys) {
        for (uint64_t k : slice_keys) {
            EXPECT_TRUE(all.insert(k).second) << "duplicate key " << k;
        }
    }
    // Slice tags (key >> 40) distinguish the two slices.
    EXPECT_EQ(keys[0][0] >> 40, 0u);
    EXPECT_EQ(keys[1][0] >> 40, 1u);
}

TEST(Preload, StopsAtStorageCapacity)
{
    sim::Simulator sim;
    core::SdfConfig cfg;
    cfg.flash.geometry = nand::TinyTestGeometry();
    cfg.flash.timing = nand::FastTestTiming();
    cfg.link = controller::UnlimitedLinkSpec();
    cfg.spare_blocks_per_plane = 2;
    core::SdfDevice device(sim, cfg);
    blocklayer::BlockLayer layer(sim, device, {});
    kv::SdfPatchStorage storage(layer);
    kv::IdAllocator ids;
    kv::Slice slice(sim, storage, ids, {});

    // Ask for far more than the tiny device holds; preload must stop
    // gracefully with however much fits.
    const auto keys =
        PreloadSlices({&slice}, 100 * util::kGiB, 16 * util::kKiB);
    EXPECT_GT(keys[0].size(), 0u);
    EXPECT_LT(keys[0].size(), 100ull * util::kGiB / (16 * util::kKiB));
    EXPECT_EQ(layer.FreeUnits(), 0u);
}

// ---------------------------------------------------------------------------
// Raw drivers: measurement discipline
// ---------------------------------------------------------------------------

TEST(RawDrivers, WarmupExcludedFromThroughput)
{
    // A device that is twice as fast during the warmup would corrupt the
    // numbers if warmup were counted; instead verify ops*size == bytes.
    sim::Simulator sim;
    core::SdfDevice device(sim, core::BaiduSdfConfig(0.02));
    host::IoStack stack(sim, host::SdfUserStackSpec());
    PreconditionSdf(device);
    RawRunConfig run;
    run.warmup = util::MsToNs(100);
    run.duration = util::MsToNs(500);
    const RawResult r =
        RunSdfRandomReads(sim, device, stack, 8, 64 * util::kKiB, run);
    EXPECT_GT(r.operations, 0u);
    // Throughput consistent with the op count over the window.
    const double expect_mbps = util::BandwidthMBps(
        r.operations * 64 * util::kKiB, run.duration);
    EXPECT_NEAR(r.mbps, expect_mbps, expect_mbps * 0.01 + 0.1);
}

TEST(RawDrivers, WriteLatenciesIncludeErase)
{
    sim::Simulator sim;
    core::SdfDevice device(sim, core::BaiduSdfConfig(0.02));
    host::IoStack stack(sim, host::SdfUserStackSpec());
    PreconditionSdf(device);
    RawRunConfig run;
    run.warmup = util::MsToNs(100);
    run.duration = util::SecToNs(2.0);
    const RawResult r = RunSdfWrites(sim, device, stack, 2, run);
    ASSERT_GT(r.latencies.count(), 0u);
    // Erase (3 ms) + program-bound write: each op well above 300 ms.
    EXPECT_GT(r.latencies.MinMs(), 300.0);
}

// ---------------------------------------------------------------------------
// Trace generation
// ---------------------------------------------------------------------------

TEST(Trace, DeterministicForEqualSeeds)
{
    const auto phases = ProductionDayPhases(0.2);
    const auto a = GenerateTrace(phases, 4, 100, 1);
    const auto b = GenerateTrace(phases, 4, 100, 1);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].key, b[i].key);
        EXPECT_EQ(a[i].issue_at, b[i].issue_at);
        EXPECT_EQ(static_cast<int>(a[i].kind), static_cast<int>(b[i].kind));
    }
    // A different seed produces a different trace (somewhere).
    const auto c = GenerateTrace(phases, 4, 100, 2);
    bool any_diff = c.size() != a.size();
    for (size_t i = 0; !any_diff && i < std::min(a.size(), c.size()); ++i) {
        any_diff = a[i].key != c[i].key || a[i].issue_at != c[i].issue_at;
    }
    EXPECT_TRUE(any_diff);
}

TEST(Trace, RespectsPhaseMixAndTimes)
{
    std::vector<TracePhase> phases(2);
    phases[0].name = "writes";
    phases[0].duration = util::SecToNs(1);
    phases[0].ops_per_sec = 2000;
    phases[0].put_fraction = 1.0;
    phases[1].name = "reads";
    phases[1].duration = util::SecToNs(1);
    phases[1].ops_per_sec = 2000;

    const auto trace = GenerateTrace(phases, 2, 50, 3);
    int phase0_puts = 0, phase0_ops = 0, phase1_gets = 0, phase1_ops = 0;
    for (const auto &op : trace) {
        if (op.issue_at < util::SecToNs(1)) {
            ++phase0_ops;
            phase0_puts += op.kind == TraceOp::Kind::kPut;
        } else {
            EXPECT_LT(op.issue_at, util::SecToNs(2));
            ++phase1_ops;
            phase1_gets += op.kind == TraceOp::Kind::kGet;
        }
    }
    EXPECT_EQ(phase0_puts, phase0_ops);
    EXPECT_EQ(phase1_gets, phase1_ops);
    // Rate within 15 % of the 2000 ops/s target.
    EXPECT_NEAR(phase0_ops, 2000, 300);
}

TEST(Trace, PutKeysNeverCollideWithinSlice)
{
    std::vector<TracePhase> phases(1);
    phases[0].duration = util::SecToNs(2);
    phases[0].ops_per_sec = 1000;
    phases[0].put_fraction = 0.5;
    const auto trace = GenerateTrace(phases, 3, 20, 5);
    std::set<uint64_t> put_keys;
    for (const auto &op : trace) {
        if (op.kind != TraceOp::Kind::kPut) continue;
        EXPECT_TRUE(put_keys.insert(op.key).second);
    }
}

TEST(Trace, ReplayProducesPerPhaseResults)
{
    sim::Simulator sim;
    core::SdfDevice device(sim, FastSdf());
    blocklayer::BlockLayer layer(sim, device, {});
    kv::SdfPatchStorage storage(layer);
    kv::IdAllocator ids;
    kv::Slice s0(sim, storage, ids, {});
    kv::Slice s1(sim, storage, ids, {});
    std::vector<kv::Slice *> slices{&s0, &s1};
    const auto keys =
        PreloadSlices(slices, 32 * util::kMiB, 64 * util::kKiB);
    const uint64_t keys_per_slice = keys[0].size();

    const auto phases = ProductionDayPhases(0.3);
    const auto trace =
        GenerateTrace(phases, 2, keys_per_slice, 7);
    const auto results = ReplayTrace(sim, slices, phases, trace);

    ASSERT_EQ(results.size(), phases.size());
    uint64_t total_ops = 0;
    for (const auto &r : results) {
        total_ops += r.gets + r.puts + r.deletes;
    }
    EXPECT_EQ(total_ops, trace.size());
    // Crawl phase writes; serving phase reads.
    EXPECT_GT(results[0].puts, results[0].gets);
    EXPECT_GT(results[2].gets, results[2].puts);
    EXPECT_GT(results[2].read_mbps, 0.0);
    // Preloaded keys exist: misses only among deleted/unwritten tails.
    EXPECT_LT(results[2].get_misses, results[2].gets / 5);
}

}  // namespace
}  // namespace sdf::workload
