/**
 * @file
 * Statistical and behavioral tests for the YCSB workload engine:
 * chi-square goodness-of-fit of the Zipfian sampler against its analytic
 * pmf at several exponents, golden first-N sample sequences (the
 * determinism contract, pinned), key-chooser and value-distribution
 * behavior through an instrumented fake service, exact phase-boundary
 * accounting (per-phase counts sum to run totals; SLO violations
 * localize to the phase that caused them), and cluster range-scan
 * correctness under concurrent writes and a mid-run node restart.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "client/kv_client.h"
#include "cluster/cluster.h"
#include "sim/simulator.h"
#include "testbed/testbed.h"
#include "util/rng.h"
#include "workload/kv_driver.h"
#include "workload/ycsb.h"

namespace sdf {
namespace {

using util::TimeNs;

// ---------------------------------------------------------------------------
// Chi-square machinery: regularized incomplete gamma (Numerical-Recipes
// style series + continued fraction), so the tests can turn a chi-square
// statistic into an actual p-value with no external dependency.
// ---------------------------------------------------------------------------

/** Lower regularized incomplete gamma P(a,x) by series (x < a+1). */
double
GammaPSeries(double a, double x)
{
    double ap = a;
    double sum = 1.0 / a;
    double del = sum;
    for (int i = 0; i < 500; ++i) {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if (std::abs(del) < std::abs(sum) * 1e-12) break;
    }
    return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

/** Upper regularized incomplete gamma Q(a,x) by continued fraction. */
double
GammaQContinued(double a, double x)
{
    const double kTiny = 1e-300;
    double b = x + 1.0 - a;
    double c = 1.0 / kTiny;
    double d = 1.0 / b;
    double h = d;
    for (int i = 1; i < 500; ++i) {
        const double an = -i * (i - a);
        b += 2.0;
        d = an * d + b;
        if (std::abs(d) < kTiny) d = kTiny;
        c = b + an / c;
        if (std::abs(c) < kTiny) c = kTiny;
        d = 1.0 / d;
        const double del = d * c;
        h *= del;
        if (std::abs(del - 1.0) < 1e-12) break;
    }
    return std::exp(-x + a * std::log(x) - std::lgamma(a)) * h;
}

/** P(chi2 >= observed) for @p df degrees of freedom. */
double
ChiSquarePValue(double chi2, double df)
{
    const double a = df / 2.0;
    const double x = chi2 / 2.0;
    if (x <= 0.0) return 1.0;
    if (x < a + 1.0) return 1.0 - GammaPSeries(a, x);
    return GammaQContinued(a, x);
}

/**
 * Draw @p samples ranks and test them against the analytic pmf.
 * @return the chi-square p-value (high = consistent with the pmf).
 */
double
ZipfGofPValue(uint64_t n, double theta, uint64_t samples, uint64_t seed)
{
    workload::ZipfianGenerator gen(n, theta);
    util::Rng rng(seed);
    std::vector<uint64_t> counts(n, 0);
    for (uint64_t i = 0; i < samples; ++i) {
        const uint64_t k = gen.Next(rng);
        EXPECT_GE(k, 1u);
        EXPECT_LE(k, n);
        ++counts[k - 1];
    }
    double chi2 = 0.0;
    double min_expected = 1e30;
    for (uint64_t k = 1; k <= n; ++k) {
        const double expected =
            gen.Pmf(k) * static_cast<double>(samples);
        min_expected = std::min(min_expected, expected);
        const double diff = static_cast<double>(counts[k - 1]) - expected;
        chi2 += diff * diff / expected;
    }
    // The asymptotic chi-square distribution needs every cell populated.
    EXPECT_GE(min_expected, 5.0);
    return ChiSquarePValue(chi2, static_cast<double>(n - 1));
}

TEST(ZipfianGenerator, ChiSquareAcceptsLowSkew)
{
    EXPECT_GT(ZipfGofPValue(100, 0.5, 200000, 42), 0.01);
}

TEST(ZipfianGenerator, ChiSquareAcceptsYcsbDefaultSkew)
{
    EXPECT_GT(ZipfGofPValue(100, 0.99, 200000, 42), 0.01);
}

TEST(ZipfianGenerator, ChiSquareAcceptsHighSkew)
{
    EXPECT_GT(ZipfGofPValue(100, 1.2, 200000, 42), 0.01);
}

TEST(ZipfianGenerator, ChiSquareRejectsWrongExponent)
{
    // Negative control: samples at theta=1.2 scored against the
    // theta=0.99 pmf must *fail* the test, or the acceptances above
    // prove nothing.
    const uint64_t n = 100, samples = 200000;
    workload::ZipfianGenerator wrong(n, 1.2);
    workload::ZipfianGenerator scored(n, 0.99);
    util::Rng rng(42);
    std::vector<uint64_t> counts(n, 0);
    for (uint64_t i = 0; i < samples; ++i) ++counts[wrong.Next(rng) - 1];
    double chi2 = 0.0;
    for (uint64_t k = 1; k <= n; ++k) {
        const double expected =
            scored.Pmf(k) * static_cast<double>(samples);
        const double diff = static_cast<double>(counts[k - 1]) - expected;
        chi2 += diff * diff / expected;
    }
    EXPECT_LT(ChiSquarePValue(chi2, static_cast<double>(n - 1)), 1e-6);
}

TEST(ZipfianGenerator, PmfNormalizesAndDecays)
{
    workload::ZipfianGenerator gen(100, 0.99);
    double sum = 0.0;
    for (uint64_t k = 1; k <= 100; ++k) {
        sum += gen.Pmf(k);
        if (k > 1) {
            EXPECT_LT(gen.Pmf(k), gen.Pmf(k - 1));
        }
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ZipfianGenerator, GoldenSequencesPinDeterminism)
{
    // First 16 ranks for n=1000 at each exponent, seed 12345. These pin
    // the sampler bit-for-bit: any change to the rejection-inversion
    // arithmetic or the rng consumption order is a breaking change to
    // every golden export downstream and must show up here first.
    const struct
    {
        double theta;
        uint64_t want[16];
    } kGolden[] = {
        {0.5,
         {75, 762, 3, 908, 209, 980, 712, 506, 388, 12, 56, 226, 32, 6,
          752, 24}},
        {0.99,
         {4, 389, 1, 705, 17, 926, 313, 115, 59, 1, 3, 19, 2, 1, 373, 2}},
        {1.2, {2, 156, 1, 461, 5, 834, 110, 29, 14, 1, 1, 5, 1, 1, 145, 1}},
    };
    for (const auto &g : kGolden) {
        workload::ZipfianGenerator gen(1000, g.theta);
        util::Rng rng(12345);
        for (uint64_t want : g.want) {
            EXPECT_EQ(gen.Next(rng), want) << "theta " << g.theta;
        }
    }
}

TEST(ZipfianGenerator, SingleElementPopulation)
{
    workload::ZipfianGenerator gen(1, 0.99);
    util::Rng rng(1);
    for (int i = 0; i < 10; ++i) EXPECT_EQ(gen.Next(rng), 1u);
    EXPECT_NEAR(gen.Pmf(1), 1.0, 1e-12);
}

// ---------------------------------------------------------------------------
// Engine behavior through an instrumented fake service: records every
// key/size it is asked for and completes after a configurable simulated
// latency, so chooser and phase behavior is observable without device
// noise.
// ---------------------------------------------------------------------------

struct FakeService
{
    sim::Simulator &sim;
    /** Completion latency, possibly time-dependent. */
    std::function<TimeNs()> latency = [] { return util::UsToNs(100); };
    std::vector<uint64_t> get_keys;
    std::vector<uint64_t> put_keys;
    std::vector<uint32_t> put_sizes;
    std::vector<std::pair<uint64_t, uint32_t>> scan_calls;

    explicit FakeService(sim::Simulator &s) : sim(s) {}

    workload::KvService
    Service()
    {
        workload::KvService svc;
        svc.get = [this](uint64_t key, kv::GetCallback done) {
            get_keys.push_back(key);
            auto d = std::make_shared<kv::GetCallback>(std::move(done));
            sim.Schedule(latency(), [d]() {
                kv::GetResult r;
                r.ok = true;
                r.found = true;
                r.value_size = 16;
                (*d)(r);
            });
        };
        svc.put = [this](uint64_t key, uint32_t size, kv::PutCallback done) {
            put_keys.push_back(key);
            put_sizes.push_back(size);
            auto d = std::make_shared<kv::PutCallback>(std::move(done));
            sim.Schedule(latency(), [d]() { (*d)(true); });
        };
        svc.scan = [this](uint64_t start, uint32_t limit,
                          std::function<void(const kv::ScanResult &)> done) {
            scan_calls.emplace_back(start, limit);
            sim.Schedule(latency(), [done]() {
                kv::ScanResult r;
                r.entries.push_back({1, 16});
                r.scanned_bytes = 16;
                done(r);
            });
        };
        return svc;
    }
};

std::vector<uint64_t>
SequentialKeys(uint64_t n)
{
    std::vector<uint64_t> keys(n);
    for (uint64_t i = 0; i < n; ++i) keys[i] = i + 1;
    return keys;
}

TEST(RunYcsb, HotRangeChooserConcentratesOps)
{
    sim::Simulator sim;
    FakeService fake(sim);
    workload::YcsbConfig cfg;
    cfg.arrival_rate = 20000;
    cfg.duration = util::SecToNs(1.0);
    cfg.seed = 9;
    workload::YcsbPhase p;
    p.chooser = workload::KeyChooser::kHotRange;
    p.hot = {0.10, 0.50, 0.9};  // Keys 501..600 of 1..1000.
    cfg.phases = {p};

    const auto keys = SequentialKeys(1000);
    workload::RunYcsb(sim, fake.Service(), keys, cfg);

    ASSERT_GT(fake.get_keys.size(), 1000u);
    uint64_t hot = 0;
    for (uint64_t k : fake.get_keys) hot += (k >= 501 && k <= 600);
    const double frac =
        static_cast<double>(hot) / static_cast<double>(fake.get_keys.size());
    // 90% targeted + 10% uniform spillover (of which 10% lands inside):
    // expect ~0.91; allow generous sampling slack.
    EXPECT_GT(frac, 0.85);
    EXPECT_LT(frac, 0.97);
}

TEST(RunYcsb, ZipfianChooserSkewsAndUniformDoesNot)
{
    auto top_share = [](workload::KeyChooser chooser, bool scramble) {
        sim::Simulator sim;
        FakeService fake(sim);
        workload::YcsbConfig cfg;
        cfg.arrival_rate = 20000;
        cfg.duration = util::SecToNs(1.0);
        cfg.seed = 11;
        cfg.theta = 0.99;
        cfg.scramble = scramble;
        workload::YcsbPhase p;
        p.chooser = chooser;
        cfg.phases = {p};
        const auto keys = SequentialKeys(1000);
        workload::RunYcsb(sim, fake.Service(), keys, cfg);
        std::map<uint64_t, uint64_t> counts;
        for (uint64_t k : fake.get_keys) ++counts[k];
        std::vector<uint64_t> sorted;
        for (const auto &[k, c] : counts) sorted.push_back(c);
        std::sort(sorted.rbegin(), sorted.rend());
        uint64_t top10 = 0, total = 0;
        for (size_t i = 0; i < sorted.size(); ++i) {
            if (i < 10) top10 += sorted[i];
            total += sorted[i];
        }
        return static_cast<double>(top10) / static_cast<double>(total);
    };
    // Zipf(0.99) over 1000 keys: the 10 hottest ranks carry ~39% of the
    // mass (H(10)/H(1000) in the generalized harmonic numbers). Uniform:
    // exactly 1%, plus sampling noise. Scrambling relabels keys but must
    // not change the shape.
    EXPECT_GT(top_share(workload::KeyChooser::kZipfian, false), 0.3);
    EXPECT_GT(top_share(workload::KeyChooser::kZipfian, true), 0.3);
    EXPECT_LT(top_share(workload::KeyChooser::kUniform, false), 0.05);
}

TEST(RunYcsb, LatestChooserFavorsNewestInserts)
{
    sim::Simulator sim;
    FakeService fake(sim);
    workload::YcsbConfig cfg;
    cfg.arrival_rate = 20000;
    cfg.duration = util::SecToNs(1.0);
    cfg.seed = 13;
    cfg.first_insert_key = 1000000;
    workload::YcsbPhase p;
    p.chooser = workload::KeyChooser::kLatest;
    p.mix = {0.8, 0.0, 0.2, 0.0};
    cfg.phases = {p};

    const auto keys = SequentialKeys(1000);
    const auto r = workload::RunYcsb(sim, fake.Service(), keys, cfg);
    ASSERT_GT(r.ok_inserts, 100u);

    // Reads of inserted keys (>= first_insert_key) must dominate reads
    // of the preloaded tail: recency-skewed traffic follows the inserts.
    uint64_t inserted_reads = 0, preload_head_reads = 0;
    for (uint64_t k : fake.get_keys) {
        if (k >= cfg.first_insert_key) ++inserted_reads;
        if (k <= 500) ++preload_head_reads;
    }
    EXPECT_GT(inserted_reads, preload_head_reads);
}

TEST(RunYcsb, ValueDistributionsRespectBounds)
{
    auto sizes = [](workload::ValueDist dist) {
        sim::Simulator sim;
        FakeService fake(sim);
        workload::YcsbConfig cfg;
        cfg.arrival_rate = 10000;
        cfg.duration = util::SecToNs(0.5);
        cfg.seed = 17;
        cfg.value_dist = dist;
        cfg.value_bytes = 1024;
        cfg.value_min = 512;
        cfg.value_max = 8192;
        workload::YcsbPhase p;
        p.mix = {0.0, 1.0, 0.0, 0.0};
        cfg.phases = {p};
        const auto keys = SequentialKeys(100);
        workload::RunYcsb(sim, fake.Service(), keys, cfg);
        return fake.put_sizes;
    };

    for (uint32_t s : sizes(workload::ValueDist::kFixed)) {
        EXPECT_EQ(s, 1024u);
    }

    const auto uniform = sizes(workload::ValueDist::kUniform);
    ASSERT_GT(uniform.size(), 1000u);
    uint32_t lo = UINT32_MAX, hi = 0;
    for (uint32_t s : uniform) {
        EXPECT_GE(s, 512u);
        EXPECT_LE(s, 8192u);
        lo = std::min(lo, s);
        hi = std::max(hi, s);
    }
    EXPECT_LT(lo, 1024u);   // Actually spreads across the range.
    EXPECT_GT(hi, 4096u);

    const auto ladder = sizes(workload::ValueDist::kFieldZipf);
    ASSERT_GT(ladder.size(), 1000u);
    uint64_t base = 0;
    for (uint32_t s : ladder) {
        // Power-of-two ladder rungs only, never past the cap.
        EXPECT_EQ(s & (s - 1), 0u);
        EXPECT_GE(s, 1024u);
        EXPECT_LE(s, 8192u);
        base += (s == 1024);
    }
    // Zipf-decaying rung choice: the base rung is the clear mode
    // (pmf(1) = 1/zeta(4, 0.99) ~ 0.48 of draws).
    EXPECT_GT(base, ladder.size() * 2 / 5);
}

TEST(RunYcsb, SameSeedIsDeterministic)
{
    auto run = []() {
        sim::Simulator sim;
        FakeService fake(sim);
        workload::YcsbConfig cfg;
        cfg.arrival_rate = 20000;
        cfg.duration = util::SecToNs(0.5);
        cfg.seed = 21;
        cfg = workload::YcsbProfile("storm", cfg);
        const auto keys = SequentialKeys(500);
        return workload::RunYcsb(sim, fake.Service(), keys, cfg);
    };
    const auto a = run();
    const auto b = run();
    EXPECT_EQ(a.issued, b.issued);
    EXPECT_EQ(a.acked_writes, b.acked_writes);
    ASSERT_EQ(a.phases.size(), b.phases.size());
    for (size_t i = 0; i < a.phases.size(); ++i) {
        EXPECT_EQ(a.phases[i].issued, b.phases[i].issued);
        EXPECT_EQ(a.phases[i].completed, b.phases[i].completed);
        EXPECT_EQ(a.phases[i].slo_violations, b.phases[i].slo_violations);
        EXPECT_EQ(a.phases[i].p99_ms, b.phases[i].p99_ms);
    }
}

TEST(RunYcsb, PhaseCountsSumExactlyToTotals)
{
    sim::Simulator sim;
    FakeService fake(sim);
    workload::YcsbConfig cfg;
    cfg.arrival_rate = 30000;
    cfg.duration = util::SecToNs(1.0);
    cfg.seed = 23;
    cfg = workload::YcsbProfile("diurnal", cfg);
    const auto keys = SequentialKeys(500);
    const auto r = workload::RunYcsb(sim, fake.Service(), keys, cfg);

    ASSERT_EQ(r.phases.size(), 4u);
    uint64_t issued = 0, completed = 0, ok = 0, viol = 0;
    for (const auto &p : r.phases) {
        issued += p.issued;
        completed += p.completed;
        ok += p.ok_reads + p.ok_updates + p.ok_inserts + p.ok_scans;
        viol += p.slo_violations;
    }
    EXPECT_EQ(issued, r.issued);
    EXPECT_EQ(completed, r.completed);
    // The run drains: every issued op completed and was attributed.
    EXPECT_EQ(r.completed, r.issued);
    EXPECT_EQ(ok, r.ok_reads + r.ok_updates + r.ok_inserts + r.ok_scans);
    EXPECT_EQ(viol, r.slo_violations);

    // The diurnal rate ramp is visible in the issue counts: noon (x2)
    // issues roughly twice morning (x1), morning roughly twice night
    // (x0.5). Poisson noise at these counts is ~2%.
    const double night = static_cast<double>(r.phases[0].issued);
    const double morning = static_cast<double>(r.phases[1].issued);
    const double noon = static_cast<double>(r.phases[2].issued);
    EXPECT_NEAR(morning / night, 2.0, 0.3);
    EXPECT_NEAR(noon / morning, 2.0, 0.3);
}

TEST(RunYcsb, SloViolationsLocalizeToTheSlowPhase)
{
    // Service latency depends on the simulated clock: fast except inside
    // the middle (spike) window, where every op takes 2 ms against a
    // 1 ms SLO. Attribution is by issue time, so exactly the spike
    // phase's ops violate — no smearing into neighbors.
    sim::Simulator sim;
    FakeService fake(sim);
    const TimeNs dur = util::SecToNs(1.0);
    const TimeNs spike_lo = dur * 2 / 5;  // storm profile: 0.4/0.2/0.4.
    const TimeNs spike_hi = dur * 3 / 5;
    fake.latency = [&sim, spike_lo, spike_hi]() {
        const TimeNs now = sim.Now();
        return now >= spike_lo && now < spike_hi ? util::MsToNs(2)
                                                 : util::UsToNs(50);
    };
    workload::YcsbConfig cfg;
    cfg.arrival_rate = 20000;
    cfg.duration = dur;
    cfg.seed = 29;
    cfg.slo = util::MsToNs(1);
    cfg = workload::YcsbProfile("storm", cfg);
    const auto keys = SequentialKeys(500);
    const auto r = workload::RunYcsb(sim, fake.Service(), keys, cfg);

    ASSERT_EQ(r.phases.size(), 3u);
    const auto &steady = r.phases[0];
    const auto &spike = r.phases[1];
    const auto &recovery = r.phases[2];
    EXPECT_EQ(steady.slo_violations, 0u);
    EXPECT_EQ(recovery.slo_violations, 0u);
    EXPECT_EQ(spike.slo_violations, spike.issued);
    EXPECT_EQ(r.slo_violations, spike.slo_violations);
    // The spike really ran at 3x arrivals over half the steady window's
    // duration: its issue count is ~1.5x steady's.
    EXPECT_GT(spike.issued, steady.issued);
}

TEST(RunYcsb, ProfilesHaveDocumentedShapes)
{
    workload::YcsbConfig base;
    EXPECT_EQ(workload::YcsbProfile("a", base).phases[0].mix.read, 0.5);
    EXPECT_EQ(workload::YcsbProfile("b", base).phases[0].mix.read, 0.95);
    EXPECT_EQ(workload::YcsbProfile("c", base).phases[0].mix.read, 1.0);
    EXPECT_EQ(workload::YcsbProfile("e", base).phases[0].mix.scan, 0.95);
    EXPECT_EQ(workload::YcsbProfile("storm", base).phases.size(), 3u);
    EXPECT_EQ(workload::YcsbProfile("storm", base).phases[1].chooser,
              workload::KeyChooser::kHotRange);
    EXPECT_EQ(workload::YcsbProfile("diurnal", base).phases.size(), 4u);
}

// ---------------------------------------------------------------------------
// Cluster range scans: exactness under concurrent writes and restart.
// ---------------------------------------------------------------------------

cluster::ClusterConfig
TinyCluster(uint32_t nodes, uint32_t replication)
{
    cluster::ClusterConfig cc;
    cc.nodes = nodes;
    cc.replication = replication;
    cc.node.kv.stack.capacity_scale = 0.02;
    cc.node.kv.stack.with_io_stack = false;
    cc.node.kv.store.slice_count = 2;
    cc.node.kv.stack.tune_sdf = [](core::SdfConfig &dc) {
        dc.flash.timing = nand::FastTestTiming();
    };
    return cc;
}

std::vector<uint64_t>
Preload(sim::Simulator &sim, cluster::Cluster &cl, uint64_t count)
{
    std::vector<uint64_t> keys;
    uint64_t acked = 0;
    for (uint64_t k = 1; k <= count; ++k) {
        keys.push_back(k);
        cl.router().Put(k, 16 * util::kKiB,
                        [&acked](bool ok) { acked += ok; });
    }
    sim.Run();
    cl.FlushAll();
    sim.Run();
    EXPECT_EQ(acked, count);
    return keys;
}

/** Synchronous-style scan helper: runs the sim until the result lands. */
kv::ScanResult
ScanNow(sim::Simulator &sim, client::KvClient &client, uint64_t start,
        uint32_t limit)
{
    kv::ScanResult out;
    bool got = false;
    client.Scan(start, limit, [&](kv::ScanResult r) {
        out = std::move(r);
        got = true;
    });
    sim.Run();
    EXPECT_TRUE(got);
    return out;
}

TEST(ClusterScan, ReturnsExactlyTheLiveOrderedRange)
{
    sim::Simulator sim;
    cluster::Cluster cl(sim, TinyCluster(3, 2));
    Preload(sim, cl, 40);
    client::KvClient client(sim, cl.router());

    const auto r = ScanNow(sim, client, 10, 12);
    ASSERT_TRUE(r.ok);
    ASSERT_EQ(r.entries.size(), 12u);
    for (size_t i = 0; i < r.entries.size(); ++i) {
        EXPECT_EQ(r.entries[i].key, 10 + i);  // 10..21, no gaps.
        EXPECT_EQ(r.entries[i].value_size, 16 * util::kKiB);
    }
    EXPECT_EQ(r.scanned_bytes, 12 * 16 * util::kKiB);

    // Past the end of the population: exactly the tail, not limit keys.
    const auto tail = ScanNow(sim, client, 35, 100);
    ASSERT_TRUE(tail.ok);
    ASSERT_EQ(tail.entries.size(), 6u);  // 35..40.
    EXPECT_EQ(tail.entries.front().key, 35u);
    EXPECT_EQ(tail.entries.back().key, 40u);

    EXPECT_EQ(cl.router().scans(), 2u);
    EXPECT_EQ(cl.router().scan_keys(), 18u);
    EXPECT_EQ(client.stats().scans, 2u);
}

TEST(ClusterScan, SeesWritesCommittedBeforeTheScan)
{
    sim::Simulator sim;
    cluster::Cluster cl(sim, TinyCluster(3, 2));
    Preload(sim, cl, 20);
    client::KvClient client(sim, cl.router());

    // Interleave: new keys (WAL/memtable-resident, never flushed) land
    // between scans; each scan must observe everything acked before it.
    uint64_t acked = 0;
    cl.router().Put(101, 4 * util::kKiB, [&acked](bool ok) { acked += ok; });
    sim.Run();
    ASSERT_EQ(acked, 1u);
    const auto r1 = ScanNow(sim, client, 100, 10);
    ASSERT_TRUE(r1.ok);
    ASSERT_EQ(r1.entries.size(), 1u);
    EXPECT_EQ(r1.entries[0].key, 101u);
    EXPECT_EQ(r1.entries[0].value_size, 4 * util::kKiB);

    cl.router().Put(100, 4 * util::kKiB, [&acked](bool ok) { acked += ok; });
    cl.router().Put(102, 4 * util::kKiB, [&acked](bool ok) { acked += ok; });
    sim.Run();
    ASSERT_EQ(acked, 3u);
    const auto r2 = ScanNow(sim, client, 100, 10);
    ASSERT_TRUE(r2.ok);
    ASSERT_EQ(r2.entries.size(), 3u);
    EXPECT_EQ(r2.entries[0].key, 100u);
    EXPECT_EQ(r2.entries[1].key, 101u);
    EXPECT_EQ(r2.entries[2].key, 102u);
}

TEST(ClusterScan, FailsTypedWhenMembershipChangesMidScan)
{
    sim::Simulator sim;
    cluster::Cluster cl(sim, TinyCluster(3, 2));
    Preload(sim, cl, 30);
    client::KvClient client(sim, cl.router());

    // Launch the scan, then change membership before it completes: the
    // ownership predicates the request shipped no longer tile the ring,
    // so the whole scan must fail typed (all-or-nothing), not return a
    // silently wrong merge.
    kv::ScanResult out;
    bool got = false;
    client.Scan(1, 30, [&](kv::ScanResult r) {
        out = std::move(r);
        got = true;
    });
    cl.StopNode(1);
    sim.Run();
    ASSERT_TRUE(got);
    EXPECT_FALSE(out.ok);
    EXPECT_EQ(cl.router().scan_failures(), 1u);
}

TEST(ClusterScan, ExactAcrossNodeRestart)
{
    sim::Simulator sim;
    cluster::Cluster cl(sim, TinyCluster(3, 2));
    Preload(sim, cl, 30);
    client::KvClient client(sim, cl.router());

    // Down a node: every key is still replicated somewhere (R=2), and
    // the survivors' ownership predicates re-tile the ring, so a scan
    // issued *after* the membership settles is exact again.
    cl.StopNode(1);
    sim.Run();
    const auto down = ScanNow(sim, client, 1, 30);
    ASSERT_TRUE(down.ok);
    ASSERT_EQ(down.entries.size(), 30u);
    for (size_t i = 0; i < 30; ++i) EXPECT_EQ(down.entries[i].key, i + 1);

    // Writes during the downtime land on the survivors and must appear.
    uint64_t acked = 0;
    cl.router().Put(31, 16 * util::kKiB, [&acked](bool ok) { acked += ok; });
    sim.Run();
    ASSERT_EQ(acked, 1u);

    // Restart + rebalance: ownership returns to the restarted node; the
    // scan is exact across the healed ring, including the downtime write.
    bool back = false;
    cl.RestartNode(1, [&back]() { back = true; });
    sim.Run();
    ASSERT_TRUE(back);
    const auto healed = ScanNow(sim, client, 1, 40);
    ASSERT_TRUE(healed.ok);
    ASSERT_EQ(healed.entries.size(), 31u);
    for (size_t i = 0; i < 31; ++i) EXPECT_EQ(healed.entries[i].key, i + 1);
}

TEST(ClusterScan, YcsbProfileEOverClusterDrainsExactly)
{
    // End-to-end: the scan-heavy profile through the real client/cluster
    // path. Every issued op completes (drain), scans return real bytes,
    // and per-phase accounting stays exact on the real stack.
    sim::Simulator sim;
    cluster::Cluster cl(sim, TinyCluster(3, 2));
    const auto keys = Preload(sim, cl, 200);
    client::KvClient client(sim, cl.router());

    workload::YcsbConfig cfg;
    cfg.arrival_rate = 300;
    cfg.duration = util::SecToNs(0.4);
    cfg.seed = 31;
    cfg.scan_limit_max = 10;
    cfg.first_insert_key = 1000;
    cfg = workload::YcsbProfile("e", cfg);
    const auto r = workload::RunYcsb(sim, client.Service(), keys, cfg);

    EXPECT_EQ(r.completed, r.issued);
    EXPECT_GT(r.ok_scans, 0u);
    EXPECT_GT(r.scanned_bytes, 0u);
    EXPECT_EQ(r.phases.size(), 1u);
    EXPECT_EQ(r.phases[0].issued, r.issued);
    EXPECT_EQ(r.phases[0].scanned_bytes, r.scanned_bytes);
    // Every scan the engine issued went through the client front door.
    EXPECT_GE(client.stats().scans, r.ok_scans);
    EXPECT_EQ(cl.router().scan_keys(), r.scanned_keys);
}

}  // namespace
}  // namespace sdf
