/**
 * @file
 * sdfsim — command-line driver for ad-hoc experiments on the simulated
 * devices, without writing C++.
 *
 * Examples:
 *   sdfsim --device=sdf --workload=seqread --request=8m --duration=2
 *   sdfsim --device=huawei --workload=randread --request=8k --qd=64
 *   sdfsim --device=sdf --workload=write --channels=16
 *   sdfsim --device=intel --workload=randwrite --request=4k --op=0.07
 *   sdfsim --device=sdf --workload=kvread --slices=8 --batch=44
 *   sdfsim --device=sdf --workload=kvwrite --slices=16
 *
 * Run with --help for the full flag list.
 */
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "client/kv_client.h"
#include "cluster/cluster.h"
#include "cluster/rebalancer.h"
#include "fault_common.h"
#include "util/table_printer.h"
#include "workload/ycsb.h"

namespace sdf {
namespace {

struct Options
{
    std::string device = "sdf";      // sdf | huawei | intel | memblaze
    std::string workload = "seqread";
    uint64_t request = 8 * util::kMiB;
    uint32_t channels = 44;          // SDF sync threads.
    uint32_t qd = 64;                // Conventional async queue depth.
    double duration = 2.0;
    double warmup = 0.5;
    double scale = 0.04;
    double op_ratio = -1.0;          // <0: device default.
    uint32_t slices = 8;             // KV workloads.
    uint32_t batch = 44;
    uint32_t value_kib = 512;
    bool value_explicit = false;     // --value was passed on the command line.
    uint64_t seed = 42;
    bool wear_report = false;

    // Error model overrides (apply to the sdf device; <0 keeps defaults).
    bool errors = false;             // Enable the NAND error model.
    double rber = -1.0;              // Base raw bit-error rate.
    double wear_factor = -1.0;       // RBER multiplier at rated endurance.
    int64_t endurance = -1;          // Rated P/E cycles.
    int64_t ecc_bits = -1;           // BCH correction budget per page.
    int64_t retry_levels = -1;       // Read-retry ladder depth.

    // Fault-campaign workload (--workload=faults).
    std::string fault_plan;          // Plan file; empty = random from seed.
    uint32_t faults = 120;
    uint32_t replicas = 3;
    uint32_t keys = 300;
    uint32_t reads = 1500;

    // Cluster workload (--workload=cluster).
    uint32_t nodes = 4;
    uint32_t replication = 2;
    double read_fraction = 0.9;
    int64_t kill_node = -1;          // >=0: kill that node's device mid-run.
    int64_t restart_node = -1;       // >=0: stop + restart that node mid-run.
    bool rebalance = false;          // Heal placement after --kill-node.

    // Overload workload (--workload=overload).
    double arrival_rate = 50000.0;   // Open-loop arrivals/sec.
    double storm = 2.0;              // Arrival multiplier in the storm window.
    int64_t fail_slow_node = -1;     // >=0: that node serves slower mid-run.
    double fail_slow_factor = 4.0;   // Service-time multiplier for it.
    bool hedge = true;               // Hedged reads at the client.
    uint32_t window = 64;            // Client outstanding ops per node.
    uint32_t coalesce = 8;           // Max reads per batched RPC.
    double deadline_ms = 5.0;        // Per-op deadline; 0 = none.
    uint32_t queue_cap = 256;        // Client pending queue per node.
    uint32_t admission_cap = 128;    // Server inflight cap per node.
    bool breaker = true;             // Fail-slow circuit breaker.

    // YCSB workload (--workload=ycsb).
    std::string profile = "b";       // a|b|c|e|storm|diurnal.
    double theta = 0.99;             // Zipfian exponent.
    uint32_t scan_limit = 50;        // Max keys per range scan.

    // Observability exports (--stats-json/--stats-csv/--trace).
    bench::ObsCli obs;
};

void
PrintHelp()
{
    std::puts(
        "sdfsim — drive the SDF-reproduction devices from the command line\n"
        "\n"
        "  --device=sdf|huawei|intel|memblaze   device model (default sdf)\n"
        "  --workload=seqread|randread|write|randwrite|kvread|kvwrite|scan\n"
        "             |faults|cluster|overload|ycsb\n"
        "  --request=<n>[k|m]   request size (default 8m)\n"
        "  --channels=<n>       SDF sync threads, 1-44 (default 44)\n"
        "  --qd=<n>             conventional-device queue depth (default 64)\n"
        "  --duration=<sec>     measurement window (default 2.0)\n"
        "  --warmup=<sec>       warmup before measuring (default 0.5)\n"
        "  --scale=<f>          device capacity scale (default 0.04)\n"
        "  --op=<f>             over-provisioning ratio (conventional only)\n"
        "  --slices=<n>         CCDB slices for kv workloads (default 8)\n"
        "  --batch=<n>          kvread batch size (default 44)\n"
        "  --value=<KiB>        kv value size in KiB (default 512)\n"
        "  --seed=<n>           RNG seed (default 42)\n"
        "  --wear               print the device wear report afterwards\n"
        "\n"
        "error model (sdf device):\n"
        "  --errors             enable the NAND error model\n"
        "  --rber=<f>           base raw bit-error rate\n"
        "  --wear-factor=<f>    RBER multiplier at rated endurance\n"
        "  --endurance=<n>      rated P/E cycles\n"
        "  --ecc-bits=<n>       BCH correction budget per page\n"
        "  --retry-levels=<n>   read-retry ladder depth\n"
        "\n"
        "fault campaign (--workload=faults):\n"
        "  --fault-plan=<file>  replay a saved fault plan (else random)\n"
        "  --faults=<n>         random faults to inject (default 120)\n"
        "  --replicas=<n>       replicated stacks (default 3)\n"
        "  --keys=<n>           keys preloaded per replica (default 300)\n"
        "  --reads=<n>          reads during the fault window (default 1500)\n"
        "\n"
        "cluster (--workload=cluster):\n"
        "  --nodes=<n>          storage nodes (default 4)\n"
        "  --replication=<r>    replicas per key, 1..nodes (default 2)\n"
        "  --read-frac=<f>      mixed-load read fraction (default 0.9)\n"
        "  --kill-node=<id>     kill that node's device mid-run (degraded "
        "mode)\n"
        "  --restart-node=<id>  stop that node's process at T/3 and restart\n"
        "                       it at 2T/3 (recovery scan + rebalance)\n"
        "  --rebalance          with --kill-node: declare the node dead and\n"
        "                       run anti-entropy to restore redundancy\n"
        "  --keys=<n>           keys preloaded via the router (default 300)\n"
        "\n"
        "overload (--workload=overload):\n"
        "  --arrival-rate=<f>   open-loop arrivals/sec (default 50000)\n"
        "  --storm=<f>          arrival multiplier in the middle third of\n"
        "                       the run (default 2.0; 1.0 = no storm)\n"
        "  --fail-slow-node=<n> that node serves slower for the middle third\n"
        "  --fail-slow-factor=<f>  its service-time multiplier (default 4)\n"
        "  --hedge / --no-hedge    hedged reads at the client (default on)\n"
        "  --window=<n>         client outstanding ops per node (default 64)\n"
        "  --coalesce=<n>       max reads per batched RPC (default 8)\n"
        "  --deadline-ms=<f>    per-op deadline, 0 = none (default 5)\n"
        "  --queue-cap=<n>      client pending queue per node (default 256)\n"
        "  --admission-cap=<n>  server inflight cap per node (default 128)\n"
        "  --no-breaker         disable the fail-slow circuit breaker\n"
        "\n"
        "ycsb (--workload=ycsb; also honors the overload/cluster knobs):\n"
        "  --profile=a|b|c|e|storm|diurnal   op mix + phase schedule:\n"
        "                       a 50/50 read/update Zipfian, b 95/5,\n"
        "                       c read-only, e 95% scans / 5% inserts,\n"
        "                       storm flash-crowd spike on a hot range,\n"
        "                       diurnal rate ramp + evening write shift\n"
        "  --theta=<f>          Zipfian exponent (default 0.99)\n"
        "  --scan-limit=<n>     max keys per range scan (default 50)\n"
        "\n");
    std::puts(bench::ObsCli::HelpText());
    std::puts(
        "example:\n"
        "  sdfsim --device=sdf --workload=write \\\n"
        "      --stats-json=out.json --trace=out.trace.json\n"
        "  # out.json: counters, per-stage latency means, p99s\n"
        "  # out.trace.json: open in https://ui.perfetto.dev\n");
}

uint64_t
ParseSize(const std::string &s)
{
    char *end = nullptr;
    const double v = std::strtod(s.c_str(), &end);
    if (end && (*end == 'k' || *end == 'K')) return static_cast<uint64_t>(v * util::kKiB);
    if (end && (*end == 'm' || *end == 'M')) return static_cast<uint64_t>(v * util::kMiB);
    return static_cast<uint64_t>(v);
}

bool
ParseArgs(int argc, char **argv, Options &opt)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto eq = arg.find('=');
        const std::string key = arg.substr(0, eq);
        const std::string val =
            eq == std::string::npos ? "" : arg.substr(eq + 1);
        if (key == "--help" || key == "-h") {
            PrintHelp();
            return false;
        } else if (key == "--device") {
            opt.device = val;
        } else if (key == "--workload") {
            opt.workload = val;
        } else if (key == "--request") {
            opt.request = ParseSize(val);
        } else if (key == "--channels") {
            opt.channels = static_cast<uint32_t>(std::stoul(val));
        } else if (key == "--qd") {
            opt.qd = static_cast<uint32_t>(std::stoul(val));
        } else if (key == "--duration") {
            opt.duration = std::stod(val);
        } else if (key == "--warmup") {
            opt.warmup = std::stod(val);
        } else if (key == "--scale") {
            opt.scale = std::stod(val);
        } else if (key == "--op") {
            opt.op_ratio = std::stod(val);
        } else if (key == "--slices") {
            opt.slices = static_cast<uint32_t>(std::stoul(val));
        } else if (key == "--batch") {
            opt.batch = static_cast<uint32_t>(std::stoul(val));
        } else if (key == "--value") {
            opt.value_kib = static_cast<uint32_t>(std::stoul(val));
            opt.value_explicit = true;
        } else if (key == "--seed") {
            opt.seed = std::stoull(val);
        } else if (key == "--wear") {
            opt.wear_report = true;
        } else if (key == "--errors") {
            opt.errors = true;
        } else if (key == "--rber") {
            opt.rber = std::stod(val);
            opt.errors = true;
        } else if (key == "--wear-factor") {
            opt.wear_factor = std::stod(val);
            opt.errors = true;
        } else if (key == "--endurance") {
            opt.endurance = std::stoll(val);
            opt.errors = true;
        } else if (key == "--ecc-bits") {
            opt.ecc_bits = std::stoll(val);
        } else if (key == "--retry-levels") {
            opt.retry_levels = std::stoll(val);
        } else if (key == "--fault-plan") {
            opt.fault_plan = val;
        } else if (key == "--faults") {
            opt.faults = static_cast<uint32_t>(std::stoul(val));
        } else if (key == "--replicas") {
            opt.replicas = static_cast<uint32_t>(std::stoul(val));
        } else if (key == "--keys") {
            opt.keys = static_cast<uint32_t>(std::stoul(val));
        } else if (key == "--reads") {
            opt.reads = static_cast<uint32_t>(std::stoul(val));
        } else if (key == "--nodes") {
            opt.nodes = static_cast<uint32_t>(std::stoul(val));
        } else if (key == "--replication") {
            opt.replication = static_cast<uint32_t>(std::stoul(val));
        } else if (key == "--read-frac") {
            opt.read_fraction = std::stod(val);
        } else if (key == "--kill-node") {
            opt.kill_node = std::stoll(val);
        } else if (key == "--restart-node") {
            opt.restart_node = std::stoll(val);
        } else if (key == "--rebalance") {
            opt.rebalance = true;
        } else if (key == "--arrival-rate") {
            opt.arrival_rate = std::stod(val);
        } else if (key == "--storm") {
            opt.storm = std::stod(val);
        } else if (key == "--fail-slow-node") {
            opt.fail_slow_node = std::stoll(val);
        } else if (key == "--fail-slow-factor") {
            opt.fail_slow_factor = std::stod(val);
        } else if (key == "--hedge") {
            opt.hedge = true;
        } else if (key == "--no-hedge") {
            opt.hedge = false;
        } else if (key == "--window") {
            opt.window = static_cast<uint32_t>(std::stoul(val));
        } else if (key == "--coalesce") {
            opt.coalesce = static_cast<uint32_t>(std::stoul(val));
        } else if (key == "--deadline-ms") {
            opt.deadline_ms = std::stod(val);
        } else if (key == "--queue-cap") {
            opt.queue_cap = static_cast<uint32_t>(std::stoul(val));
        } else if (key == "--admission-cap") {
            opt.admission_cap = static_cast<uint32_t>(std::stoul(val));
        } else if (key == "--no-breaker") {
            opt.breaker = false;
        } else if (key == "--profile") {
            opt.profile = val;
        } else if (key == "--theta") {
            opt.theta = std::stod(val);
        } else if (key == "--scan-limit") {
            opt.scan_limit = static_cast<uint32_t>(std::stoul(val));
        } else if (!opt.obs.TryFlag(key, val)) {
            std::fprintf(stderr, "unknown flag: %s (try --help)\n",
                         key.c_str());
            return false;
        }
    }
    return true;
}

/** Apply the --errors/--rber/... overrides to an sdf device config. */
void
ApplyErrorOverrides(core::SdfConfig &cfg, const Options &opt)
{
    if (opt.errors) cfg.flash.errors.enabled = true;
    if (opt.rber >= 0) cfg.flash.errors.base_rber = opt.rber;
    if (opt.wear_factor >= 0)
        cfg.flash.errors.wear_rber_factor = opt.wear_factor;
    if (opt.endurance >= 0)
        cfg.flash.errors.endurance_cycles =
            static_cast<uint32_t>(opt.endurance);
    if (opt.ecc_bits >= 0)
        cfg.flash.ecc_correctable_bits = static_cast<uint32_t>(opt.ecc_bits);
    if (opt.retry_levels >= 0)
        cfg.read_retry_levels = static_cast<uint32_t>(opt.retry_levels);
}

/** Meta keys every workload shares. */
void
AddCommonMeta(Options &opt)
{
    opt.obs.AddMeta("device", opt.device);
    opt.obs.AddMeta("workload", opt.workload);
    opt.obs.AddMeta("seed", std::to_string(opt.seed));
    opt.obs.AddMeta("duration_sec", std::to_string(opt.duration));
    opt.obs.AddMeta("scale", std::to_string(opt.scale));
}

/** Install the (optional) hub and its simulator-core counter. */
void
InstallHub(Options &opt, sim::Simulator &sim)
{
    obs::Hub *hub = opt.obs.hub();
    if (hub == nullptr) return;
    sim.set_hub(hub);
    hub->metrics().RegisterCounter("sim.events_processed", [&sim]() {
        return sim.events_processed();
    });
}

int
RunRawSdf(Options &opt)
{
    sim::Simulator sim;
    InstallHub(opt, sim);
    core::SdfConfig cfg = core::BaiduSdfConfig(opt.scale);
    ApplyErrorOverrides(cfg, opt);
    core::SdfDevice device(sim, cfg);
    host::IoStack stack(sim, host::SdfUserStackSpec());
    workload::PreconditionSdf(device);

    workload::RawRunConfig run;
    run.warmup = util::SecToNs(opt.warmup);
    run.duration = util::SecToNs(opt.duration);
    run.seed = opt.seed;

    workload::RawResult r;
    if (opt.workload == "seqread") {
        r = workload::RunSdfSequentialReads(sim, device, stack, opt.channels,
                                            opt.request, run);
    } else if (opt.workload == "randread") {
        r = workload::RunSdfRandomReads(sim, device, stack, opt.channels,
                                        opt.request, run);
    } else if (opt.workload == "write" || opt.workload == "randwrite") {
        r = workload::RunSdfWrites(sim, device, stack, opt.channels, run);
    } else {
        std::fprintf(stderr, "workload %s not supported on sdf\n",
                     opt.workload.c_str());
        return 1;
    }
    std::printf("%s %s x%u: %.1f MB/s, %llu ops",
                "sdf", opt.workload.c_str(), opt.channels, r.mbps,
                static_cast<unsigned long long>(r.operations));
    if (r.latencies.count() > 0) {
        std::printf(", latency mean %.1f ms p99 %.1f ms",
                    r.latencies.MeanMs(), r.latencies.PercentileMs(99));
    }
    std::printf("\n");
    if (opt.wear_report) {
        const auto w = device.GetWearReport();
        std::printf("wear: erase counts %u..%u mean %.2f, retired %llu, "
                    "life used %.4f%%\n",
                    w.min_erase_count, w.max_erase_count, w.mean_erase_count,
                    static_cast<unsigned long long>(w.blocks_retired),
                    100 * w.life_used);
    }
    if (opt.errors) {
        const core::SdfStats &s = device.stats();
        std::printf("errors: %llu retries, %llu recoveries, %llu terminal "
                    "failures, %llu blocks retired\n",
                    static_cast<unsigned long long>(s.read_retries),
                    static_cast<unsigned long long>(s.retry_recoveries),
                    static_cast<unsigned long long>(s.read_failures),
                    static_cast<unsigned long long>(s.blocks_retired));
    }
    AddCommonMeta(opt);
    opt.obs.AddMeta("channels", std::to_string(opt.channels));
    opt.obs.AddMeta("request_bytes", std::to_string(opt.request));
    opt.obs.AddDerived("result.mbps", r.mbps);
    opt.obs.AddDerived("result.operations",
                       static_cast<double>(r.operations));
    if (r.latencies.count() > 0) {
        opt.obs.AddDerived("result.latency_mean_ms", r.latencies.MeanMs());
        opt.obs.AddDerived("result.latency_p99_ms",
                           r.latencies.PercentileMs(99));
    }
    return opt.obs.Export();
}

int
RunFaults(Options &opt)
{
    bench::FaultCampaignConfig cfg;
    cfg.hub = opt.obs.hub();
    cfg.replicas = opt.replicas;
    cfg.fault_count = opt.faults;
    cfg.keys = opt.keys;
    cfg.reads = opt.reads;
    cfg.seed = opt.seed;
    cfg.horizon_sec = opt.duration;
    cfg.capacity_scale = opt.scale;
    cfg.slices_per_replica = opt.slices;
    // Keep the campaign's small-value default (large values make every
    // read brush against the campaign's tight RPC timeout) unless the
    // user asked for a specific size.
    if (opt.value_explicit) cfg.value_bytes = opt.value_kib * util::kKiB;
    if (opt.rber >= 0) cfg.base_rber = opt.rber;
    if (opt.wear_factor >= 0) cfg.wear_rber_factor = opt.wear_factor;
    if (opt.endurance >= 0)
        cfg.endurance_cycles = static_cast<uint32_t>(opt.endurance);
    if (opt.ecc_bits >= 0)
        cfg.ecc_bits = static_cast<uint32_t>(opt.ecc_bits);
    if (opt.retry_levels >= 0)
        cfg.read_retry_levels = static_cast<uint32_t>(opt.retry_levels);
    if (!opt.fault_plan.empty()) {
        std::FILE *f = std::fopen(opt.fault_plan.c_str(), "rb");
        if (f == nullptr) {
            std::fprintf(stderr, "cannot open fault plan %s\n",
                         opt.fault_plan.c_str());
            return 1;
        }
        char buf[4096];
        size_t n;
        while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
            cfg.plan_text.append(buf, n);
        }
        std::fclose(f);
    }

    std::printf("== fault campaign: %u-way replication, %s over %.0f ms, "
                "seed %llu ==\n",
                cfg.replicas,
                opt.fault_plan.empty()
                    ? (std::to_string(cfg.fault_count) + " random faults")
                          .c_str()
                    : opt.fault_plan.c_str(),
                cfg.horizon_sec * 1000.0,
                static_cast<unsigned long long>(cfg.seed));
    const bench::FaultCampaignResult r = bench::RunFaultCampaign(cfg);
    if (!r.plan_error.empty()) return 2;  // Parse error already printed.
    bench::PrintFaultCampaignResult(cfg, r);
    AddCommonMeta(opt);
    opt.obs.AddMeta("replicas", std::to_string(cfg.replicas));
    opt.obs.AddDerived("result.availability", r.availability);
    opt.obs.AddDerived("result.keys_lost", static_cast<double>(r.keys_lost));
    opt.obs.AddDerived("result.failovers",
                       static_cast<double>(r.failovers));
    if (const int rc = opt.obs.Export(); rc != 0) return rc;
    return r.keys_lost == 0 && r.requests_completed == r.requests_issued
               ? 0
               : 1;
}

int
RunRawConventional(Options &opt)
{
    ssd::ConventionalSsdConfig cfg =
        opt.device == "huawei"     ? ssd::HuaweiGen3Config(opt.scale)
        : opt.device == "memblaze" ? ssd::MemblazeQ520Config(opt.scale)
                                   : ssd::Intel320Config(opt.scale);
    if (opt.op_ratio >= 0.0) cfg.op_ratio = opt.op_ratio;

    sim::Simulator sim;
    InstallHub(opt, sim);
    ssd::ConventionalSsd device(sim, cfg);
    host::IoStack stack(sim, host::KernelIoStackSpec());

    workload::RawRunConfig run;
    run.warmup = util::SecToNs(opt.warmup);
    run.duration = util::SecToNs(opt.duration);
    run.seed = opt.seed;

    workload::RawResult r;
    if (opt.workload == "seqread" || opt.workload == "randread") {
        device.PreconditionFill(0.95);
        r = workload::RunConvReads(sim, device, stack, opt.qd, opt.request,
                                   opt.workload == "seqread"
                                       ? workload::Pattern::kSequential
                                       : workload::Pattern::kRandom,
                                   run);
    } else if (opt.workload == "write" || opt.workload == "randwrite") {
        if (opt.workload == "randwrite") device.PreconditionFillRandom(1.0);
        r = workload::RunConvWrites(sim, device, stack, opt.qd, opt.request,
                                    opt.workload == "write"
                                        ? workload::Pattern::kSequential
                                        : workload::Pattern::kRandom,
                                    run);
    } else {
        std::fprintf(stderr, "workload %s not supported on %s\n",
                     opt.workload.c_str(), opt.device.c_str());
        return 1;
    }
    std::printf("%s %s qd%u: %.1f MB/s, %llu ops, WA %.2f\n",
                cfg.name.c_str(), opt.workload.c_str(), opt.qd, r.mbps,
                static_cast<unsigned long long>(r.operations),
                device.stats().WriteAmplification());
    AddCommonMeta(opt);
    opt.obs.AddMeta("qd", std::to_string(opt.qd));
    opt.obs.AddMeta("request_bytes", std::to_string(opt.request));
    opt.obs.AddDerived("result.mbps", r.mbps);
    opt.obs.AddDerived("result.operations",
                       static_cast<double>(r.operations));
    opt.obs.AddDerived("result.write_amplification",
                       device.stats().WriteAmplification());
    return opt.obs.Export();
}

int
RunCluster(Options &opt)
{
    sim::Simulator sim;
    InstallHub(opt, sim);

    cluster::ClusterConfig cc;
    cc.nodes = opt.nodes;
    cc.replication = opt.replication;
    cc.node.kv.stack.backend =
        opt.device == "huawei"  ? testbed::Backend::kHuaweiGen3
        : opt.device == "intel" ? testbed::Backend::kIntel320
                                : testbed::Backend::kBaiduSdf;
    // Conventional backends run through the block-device adapter so every
    // node uses the same unified code path.
    cc.node.kv.stack.ssd_through_block_layer = true;
    cc.node.kv.stack.capacity_scale = opt.scale;
    cc.node.kv.stack.tune_sdf = [&opt](core::SdfConfig &dc) {
        ApplyErrorOverrides(dc, opt);
    };
    cc.node.kv.store.slice_count = opt.slices;
    cluster::Cluster cl(sim, cc);

    // Preload through the router so placement matches the read path.
    const uint32_t value_bytes =
        (opt.value_explicit ? opt.value_kib : 64) * util::kKiB;
    uint64_t loaded = 0;
    std::vector<uint64_t> keys;
    for (uint32_t k = 0; k < opt.keys; ++k) {
        const uint64_t key = k + 1;
        keys.push_back(key);
        cl.router().Put(key, value_bytes,
                        [&loaded](bool ok) { loaded += ok ? 1 : 0; });
    }
    sim.Run();
    cl.FlushAll();
    sim.Run();
    if (loaded != opt.keys) {
        std::fprintf(stderr, "preload: only %llu/%u keys acked\n",
                     static_cast<unsigned long long>(loaded), opt.keys);
        return 1;
    }

    // Optional mid-run node death: every channel of one node's device.
    std::unique_ptr<fault::FaultInjector> injector;
    auto devices = cl.SdfDevices();
    if (opt.kill_node >= 0) {
        const auto victim = static_cast<uint32_t>(opt.kill_node);
        if (victim >= devices.size()) {
            std::fprintf(stderr, "--kill-node=%u: no such sdf device\n",
                         victim);
            return 1;
        }
        std::vector<fault::FaultEvent> events;
        const util::TimeNs when =
            sim.Now() + util::SecToNs(opt.duration / 2);
        for (uint32_t ch = 0; ch < devices[victim]->channel_count(); ++ch) {
            fault::FaultEvent e;
            e.when = when;
            e.kind = fault::FaultKind::kChannelDeath;
            e.device = victim;
            e.channel = ch;
            events.push_back(e);
        }
        injector = std::make_unique<fault::FaultInjector>(
            sim, devices, fault::FaultPlan(std::move(events)));
    }

    // Optional process lifecycle events during the load window.
    const util::TimeNs load_start = sim.Now();
    if (opt.restart_node >= 0) {
        const auto victim = static_cast<uint32_t>(opt.restart_node);
        if (victim >= cl.node_count()) {
            std::fprintf(stderr, "--restart-node=%u: no such node\n", victim);
            return 1;
        }
        sim.ScheduleAt(load_start + util::SecToNs(opt.duration / 3),
                       [&cl, &sim, victim]() {
                           std::printf("t=%.1f ms: stopping node %u\n",
                                       static_cast<double>(sim.Now()) / 1e6,
                                       victim);
                           cl.StopNode(victim);
                       });
        sim.ScheduleAt(load_start + util::SecToNs(2 * opt.duration / 3),
                       [&cl, &sim, victim]() {
                           cl.RestartNode(victim, [&cl, &sim, victim]() {
                               std::printf(
                                   "t=%.1f ms: node %u recovered "
                                   "(%.2f ms) and rebalanced\n",
                                   static_cast<double>(sim.Now()) / 1e6,
                                   victim,
                                   static_cast<double>(
                                       cl.node(victim)
                                           .recovery()
                                           .last_recovery_ns) /
                                       1e6);
                           });
                       });
    }
    if (opt.rebalance && opt.kill_node >= 0) {
        // The device died at T/2; shortly after, declare the node gone
        // for good and restore R-way redundancy from the survivors.
        const auto victim = static_cast<uint32_t>(opt.kill_node);
        sim.ScheduleAt(load_start + util::SecToNs(opt.duration * 0.6),
                       [&cl, &sim, victim]() {
                           std::printf("t=%.1f ms: node %u declared dead, "
                                       "anti-entropy started\n",
                                       static_cast<double>(sim.Now()) / 1e6,
                                       victim);
                           cl.router().MarkNodeDown(victim);
                           cl.anti_entropy().Run();
                       });
    }

    workload::MixedRunConfig mc;
    mc.read_fraction = opt.read_fraction;
    mc.value_bytes = value_bytes;
    mc.duration = util::SecToNs(opt.duration);
    mc.seed = opt.seed;
    const workload::KvService svc = cl.Service();
    opt.obs.StartSeries(sim, "mixed", mc.duration);
    const workload::MixedRunResult r =
        workload::RunMixedLoad(sim, svc, keys, mc);

    const kv::ReplicatedKvStats &rs = cl.router().stats();
    std::printf("cluster %u nodes, R=%u, %u slices/node, value %u KiB\n",
                opt.nodes, opt.replication, opt.slices,
                value_bytes / static_cast<uint32_t>(util::kKiB));
    std::printf("mixed load (%.0f%% reads): %.0f ops/s, read %.1f MB/s, "
                "write %.1f MB/s\n",
                100 * opt.read_fraction, r.ops_per_sec, r.read_mbps,
                r.write_mbps);
    std::printf("latency: read mean %.2f ms p99 %.2f ms, write mean %.2f ms "
                "p99 %.2f ms\n",
                r.read_mean_ms, r.read_p99_ms, r.write_mean_ms,
                r.write_p99_ms);
    std::printf("replication: %llu degraded reads, %llu failed reads, "
                "%llu re-replications, %llu put failures\n",
                static_cast<unsigned long long>(rs.degraded_reads),
                static_cast<unsigned long long>(rs.failed_reads),
                static_cast<unsigned long long>(rs.re_replications),
                static_cast<unsigned long long>(rs.put_failures));
    util::TablePrinter table("requests routed per node");
    table.SetHeader({"node", "puts routed", "gets routed"});
    for (uint32_t n = 0; n < opt.nodes; ++n) {
        table.AddRow({std::to_string(n),
                      std::to_string(cl.router().node_puts(n)),
                      std::to_string(cl.router().node_gets(n))});
    }
    table.Print();

    // After any disruption, audit every key the cluster acknowledged —
    // the preload plus every acked mixed-load write — back through the
    // router: replication/recovery must have preserved all of them.
    uint64_t lost = 0;
    if (opt.kill_node >= 0 || opt.restart_node >= 0) {
        std::vector<uint64_t> audit_keys = keys;
        audit_keys.insert(audit_keys.end(), r.acked_writes.begin(),
                          r.acked_writes.end());
        std::sort(audit_keys.begin(), audit_keys.end());
        audit_keys.erase(
            std::unique(audit_keys.begin(), audit_keys.end()),
            audit_keys.end());
        // Closed-loop audit: flooding every key at once would overflow
        // the RPC timeout and report congestion as data loss.
        uint64_t audited = 0;
        size_t next = 0;
        std::vector<uint64_t> lost_keys;
        std::function<void()> audit_step = [&]() {
            if (next >= audit_keys.size()) return;
            const uint64_t key = audit_keys[next++];
            cl.router().Get(key, [&, key](const kv::GetResult &res) {
                ++audited;
                if (!res.ok || !res.found) {
                    ++lost;
                    if (lost_keys.size() < 10) lost_keys.push_back(key);
                }
                audit_step();
            });
        };
        for (uint32_t s = 0; s < 8; ++s) audit_step();
        sim.Run();
        std::printf("consistency audit: %llu acked keys, %llu lost\n",
                    static_cast<unsigned long long>(audited),
                    static_cast<unsigned long long>(lost));
        // The first few losses with their placement: which vnode owns the
        // key and which nodes the ring currently maps it to.
        for (uint64_t key : lost_keys) {
            const auto [point, owner] = cl.router().ring().OwnerVnode(key);
            std::string replicas;
            for (uint32_t n : cl.router().ReplicaNodes(key)) {
                if (!replicas.empty()) replicas += ",";
                replicas += std::to_string(n);
            }
            std::fprintf(stderr,
                         "lost key %llu: vnode 0x%016llx on node %u, "
                         "replica set [%s]\n",
                         static_cast<unsigned long long>(key),
                         static_cast<unsigned long long>(point), owner,
                         replicas.c_str());
        }
    }

    uint64_t under_replicated = 0;
    if (opt.restart_node >= 0 || (opt.rebalance && opt.kill_node >= 0)) {
        const cluster::Rebalancer::Stats &rb = cl.rebalancer().stats();
        under_replicated = cl.rebalancer().CountUnderReplicated();
        std::printf("rebalance: %llu passes (%llu anti-entropy), %llu keys "
                    "moved (%.1f MiB), %llu failures, %llu keys still "
                    "under-replicated\n",
                    static_cast<unsigned long long>(rb.passes),
                    static_cast<unsigned long long>(rb.anti_entropy_passes),
                    static_cast<unsigned long long>(rb.keys_moved),
                    static_cast<double>(rb.bytes_moved) / (1 << 20),
                    static_cast<unsigned long long>(rb.move_failures),
                    static_cast<unsigned long long>(under_replicated));
        opt.obs.AddDerived("result.rebalance_keys_moved",
                           static_cast<double>(rb.keys_moved));
        opt.obs.AddDerived("result.rebalance_bytes_moved",
                           static_cast<double>(rb.bytes_moved));
        opt.obs.AddDerived("result.under_replicated",
                           static_cast<double>(under_replicated));
    }
    if (opt.restart_node >= 0) {
        const auto &rec =
            cl.node(static_cast<uint32_t>(opt.restart_node)).recovery();
        std::printf("recovery: %llu patches scanned (%.1f MiB), %llu WAL "
                    "records replayed, %.2f ms\n",
                    static_cast<unsigned long long>(rec.patches_scanned),
                    static_cast<double>(rec.bytes_scanned) / (1 << 20),
                    static_cast<unsigned long long>(
                        rec.wal_records_replayed),
                    static_cast<double>(rec.last_recovery_ns) / 1e6);
        opt.obs.AddDerived("result.recovery_ms",
                           static_cast<double>(rec.last_recovery_ns) / 1e6);
        opt.obs.AddDerived("result.recovery_patches_scanned",
                           static_cast<double>(rec.patches_scanned));
    }

    AddCommonMeta(opt);
    opt.obs.AddMeta("nodes", std::to_string(opt.nodes));
    opt.obs.AddMeta("replication", std::to_string(opt.replication));
    opt.obs.AddMeta("slices", std::to_string(opt.slices));
    opt.obs.AddDerived("result.ops_per_sec", r.ops_per_sec);
    opt.obs.AddDerived("result.read_mbps", r.read_mbps);
    opt.obs.AddDerived("result.write_mbps", r.write_mbps);
    opt.obs.AddDerived("result.degraded_reads",
                       static_cast<double>(rs.degraded_reads));
    opt.obs.AddDerived("result.failed_reads",
                       static_cast<double>(rs.failed_reads));
    if (const int rc = opt.obs.Export(); rc != 0) return rc;
    return lost == 0 && under_replicated == 0 ? 0 : 1;
}

/**
 * --workload=overload: open-loop Poisson traffic through the async client
 * front door, with an optional mid-run arrival storm and one fail-slow
 * node. Exercises the whole defense stack: client windows + coalescing +
 * hedged reads, server admission control, deadline propagation, and the
 * fail-slow circuit breaker. Exits nonzero if any acked write is lost.
 */
int
RunOverload(Options &opt)
{
    sim::Simulator sim;
    InstallHub(opt, sim);

    cluster::ClusterConfig cc;
    cc.nodes = opt.nodes;
    cc.replication = opt.replication;
    cc.node.kv.stack.backend =
        opt.device == "huawei"  ? testbed::Backend::kHuaweiGen3
        : opt.device == "intel" ? testbed::Backend::kIntel320
                                : testbed::Backend::kBaiduSdf;
    cc.node.kv.stack.ssd_through_block_layer = true;
    cc.node.kv.stack.capacity_scale = opt.scale;
    cc.node.kv.stack.tune_sdf = [&opt](core::SdfConfig &dc) {
        ApplyErrorOverrides(dc, opt);
    };
    cc.node.kv.store.slice_count = opt.slices;
    cc.node.admission_cap = opt.admission_cap;
    cc.breaker.enabled = opt.breaker;
    cluster::Cluster cl(sim, cc);

    // Small values: open-loop overload is a request-rate experiment, not a
    // bandwidth one.
    const uint32_t value_bytes =
        (opt.value_explicit ? opt.value_kib : 4) * util::kKiB;
    uint64_t loaded = 0;
    std::vector<uint64_t> keys;
    for (uint32_t k = 0; k < opt.keys; ++k) {
        const uint64_t key = k + 1;
        keys.push_back(key);
        cl.router().Put(key, value_bytes,
                        [&loaded](bool ok) { loaded += ok ? 1 : 0; });
    }
    sim.Run();
    cl.FlushAll();
    sim.Run();
    if (loaded != opt.keys) {
        std::fprintf(stderr, "preload: only %llu/%u keys acked\n",
                     static_cast<unsigned long long>(loaded), opt.keys);
        return 1;
    }

    const util::TimeNs load_start = sim.Now();
    const util::TimeNs dur = util::SecToNs(opt.duration);

    // Fail-slow through the fault plan so the scenario is replayable: the
    // injector's sink delivers the multiplier to the node and restores it
    // when the window (the middle third of the run) ends.
    std::unique_ptr<fault::FaultInjector> injector;
    if (opt.fail_slow_node >= 0) {
        const auto victim = static_cast<uint32_t>(opt.fail_slow_node);
        if (victim >= cl.node_count()) {
            std::fprintf(stderr, "--fail-slow-node=%u: no such node\n",
                         victim);
            return 1;
        }
        fault::FaultEvent e;
        e.when = load_start + dur / 3;
        e.kind = fault::FaultKind::kFailSlow;
        e.device = victim;
        e.duration = dur / 3;
        e.magnitude = opt.fail_slow_factor;
        injector = std::make_unique<fault::FaultInjector>(
            sim, cl.SdfDevices(), fault::FaultPlan({e}),
            [&cl](uint32_t node, double m) {
                if (node < cl.node_count()) cl.node(node).SetFailSlow(m);
            });
    }

    client::KvClientConfig kc;
    kc.window_per_node = opt.window;
    kc.queue_cap = opt.queue_cap;
    kc.batch_max = opt.coalesce;
    kc.deadline = opt.deadline_ms > 0 ? util::MsToNs(opt.deadline_ms) : 0;
    kc.hedge_reads = opt.hedge;
    client::KvClient client(sim, cl.router(), kc);

    workload::OpenRunConfig oc;
    oc.arrival_rate = opt.arrival_rate;
    oc.read_fraction = opt.read_fraction;
    oc.value_bytes = value_bytes;
    oc.duration = dur;
    oc.seed = opt.seed;
    oc.storm_factor = opt.storm;
    oc.storm_start = dur / 3;
    oc.storm_end = 2 * dur / 3;
    // Windowed metrics over the load phase (no-op without --stats-series):
    // the storm and the breaker trip land in their own windows instead of
    // being smeared into the end-of-run aggregate.
    opt.obs.StartSeries(sim, "overload", dur);
    const workload::OpenRunResult r =
        workload::RunOpenLoad(sim, client.Service(), keys, oc);

    std::printf("overload: %u nodes, R=%u, %.0f arrivals/s "
                "(storm x%.1f in the middle third), value %u KiB\n",
                opt.nodes, opt.replication, opt.arrival_rate, opt.storm,
                value_bytes / static_cast<uint32_t>(util::kKiB));
    std::printf("offered %.0f ops/s, goodput %.0f ops/s "
                "(%llu issued, %llu completed)\n",
                r.offered_ops_per_sec, r.goodput_ops_per_sec,
                static_cast<unsigned long long>(r.issued),
                static_cast<unsigned long long>(r.completed));
    std::printf("outcomes: %llu reads ok, %llu writes acked, %llu misses, "
                "%llu shed overloaded, %llu shed deadline, %llu errors\n",
                static_cast<unsigned long long>(r.ok_reads),
                static_cast<unsigned long long>(r.ok_writes),
                static_cast<unsigned long long>(r.misses),
                static_cast<unsigned long long>(r.shed_overloaded),
                static_cast<unsigned long long>(r.shed_deadline),
                static_cast<unsigned long long>(r.errors));
    std::printf("latency: p50 %.3f ms, p99 %.3f ms, p99.9 %.3f ms "
                "(read p99 %.3f ms)\n",
                r.p50_ms, r.p99_ms, r.p999_ms, r.read_p99_ms);

    const client::ClientStats &cs = client.stats();
    const client::HedgeStats &hs = client.hedge_stats();
    std::printf("client: %llu queued, %llu shed at the front door, "
                "%llu batches carrying %llu reads, %llu fallback walks\n",
                static_cast<unsigned long long>(cs.queued),
                static_cast<unsigned long long>(cs.shed_queue_full),
                static_cast<unsigned long long>(cs.batches),
                static_cast<unsigned long long>(cs.batched_gets),
                static_cast<unsigned long long>(cs.fallback_walks));
    std::printf("hedge: %llu launched, %llu wins, %llu losses, "
                "%llu cancelled (threshold now %.3f ms)\n",
                static_cast<unsigned long long>(hs.launched),
                static_cast<unsigned long long>(hs.wins),
                static_cast<unsigned long long>(hs.losses),
                static_cast<unsigned long long>(hs.cancelled),
                static_cast<double>(client.HedgeThreshold()) / 1e6);

    uint64_t admitted = 0, shed = 0;
    util::TablePrinter table("admission per node");
    table.SetHeader({"node", "admitted", "shed", "peak inflight"});
    for (uint32_t n = 0; n < cl.node_count(); ++n) {
        const cluster::StorageNode::AdmissionStats &as =
            cl.node(n).admission();
        admitted += as.admitted;
        shed += as.shed_overload;
        table.AddRow({std::to_string(n), std::to_string(as.admitted),
                      std::to_string(as.shed_overload),
                      std::to_string(as.peak_inflight)});
    }
    table.Print();
    const cluster::FailSlowBreaker::Stats &bs = cl.router().breaker().stats();
    std::printf("breaker: %llu trips, %llu resets, %llu reroutes, "
                "%u open now\n",
                static_cast<unsigned long long>(bs.trips),
                static_cast<unsigned long long>(bs.resets),
                static_cast<unsigned long long>(bs.reroutes),
                cl.router().breaker().open_count());

    // Every write the client acked must still be readable: overload may
    // shed, but it must never lose. Closed-loop so the audit itself cannot
    // congest the cluster.
    uint64_t lost = 0, audited = 0;
    size_t next = 0;
    std::function<void()> audit_step = [&]() {
        if (next >= r.acked_writes.size()) return;
        const uint64_t key = r.acked_writes[next++];
        cl.router().Get(key, [&, key](const kv::GetResult &res) {
            ++audited;
            if (!res.ok || !res.found) {
                ++lost;
                if (lost <= 10) {
                    std::fprintf(stderr, "lost acked key %llu\n",
                                 static_cast<unsigned long long>(key));
                }
            }
            audit_step();
        });
    };
    for (uint32_t s = 0; s < 8; ++s) audit_step();
    sim.Run();
    std::printf("consistency audit: %llu acked writes, %llu lost\n",
                static_cast<unsigned long long>(audited),
                static_cast<unsigned long long>(lost));

    AddCommonMeta(opt);
    opt.obs.AddMeta("nodes", std::to_string(opt.nodes));
    opt.obs.AddMeta("replication", std::to_string(opt.replication));
    opt.obs.AddMeta("arrival_rate", std::to_string(opt.arrival_rate));
    opt.obs.AddMeta("storm", std::to_string(opt.storm));
    opt.obs.AddMeta("hedge", opt.hedge ? "1" : "0");
    opt.obs.AddDerived("result.offered_ops_per_sec", r.offered_ops_per_sec);
    opt.obs.AddDerived("result.goodput_ops_per_sec", r.goodput_ops_per_sec);
    opt.obs.AddDerived("result.p99_ms", r.p99_ms);
    opt.obs.AddDerived("result.read_p99_ms", r.read_p99_ms);
    opt.obs.AddDerived("result.shed_overloaded",
                       static_cast<double>(r.shed_overloaded));
    opt.obs.AddDerived("result.shed_deadline",
                       static_cast<double>(r.shed_deadline));
    opt.obs.AddDerived("result.hedge_launched",
                       static_cast<double>(hs.launched));
    opt.obs.AddDerived("result.hedge_wins", static_cast<double>(hs.wins));
    opt.obs.AddDerived("result.admission_shed", static_cast<double>(shed));
    opt.obs.AddDerived("result.breaker_trips", static_cast<double>(bs.trips));
    opt.obs.AddDerived("result.lost_acked_writes",
                       static_cast<double>(lost));
    if (const int rc = opt.obs.Export(); rc != 0) return rc;
    return lost == 0 ? 0 : 1;
}

/**
 * --workload=ycsb: a named YCSB profile through the async client front
 * door — Zipfian/latest/hot-range key skew, mixed ops including cluster
 * range scans, and a dynamic phase schedule (flash crowd, diurnal ramp)
 * over open-loop Poisson arrivals. Each phase opens its own labelled
 * series segment and exports per-phase tails + SLO counters, so a storm's
 * violations land in the storm's numbers, not the run average. Exits
 * nonzero if any acked write is lost.
 */
int
RunYcsb(Options &opt)
{
    sim::Simulator sim;
    InstallHub(opt, sim);

    cluster::ClusterConfig cc;
    cc.nodes = opt.nodes;
    cc.replication = opt.replication;
    cc.node.kv.stack.backend =
        opt.device == "huawei"  ? testbed::Backend::kHuaweiGen3
        : opt.device == "intel" ? testbed::Backend::kIntel320
                                : testbed::Backend::kBaiduSdf;
    cc.node.kv.stack.ssd_through_block_layer = true;
    cc.node.kv.stack.capacity_scale = opt.scale;
    cc.node.kv.stack.tune_sdf = [&opt](core::SdfConfig &dc) {
        ApplyErrorOverrides(dc, opt);
    };
    cc.node.kv.store.slice_count = opt.slices;
    cc.node.admission_cap = opt.admission_cap;
    cc.breaker.enabled = opt.breaker;
    cluster::Cluster cl(sim, cc);

    const uint32_t value_bytes =
        (opt.value_explicit ? opt.value_kib : 4) * util::kKiB;
    uint64_t loaded = 0;
    std::vector<uint64_t> keys;
    for (uint32_t k = 0; k < opt.keys; ++k) {
        const uint64_t key = k + 1;
        keys.push_back(key);
        cl.router().Put(key, value_bytes,
                        [&loaded](bool ok) { loaded += ok ? 1 : 0; });
    }
    sim.Run();
    cl.FlushAll();
    sim.Run();
    if (loaded != opt.keys) {
        std::fprintf(stderr, "preload: only %llu/%u keys acked\n",
                     static_cast<unsigned long long>(loaded), opt.keys);
        return 1;
    }

    client::KvClientConfig kc;
    kc.window_per_node = opt.window;
    kc.queue_cap = opt.queue_cap;
    kc.batch_max = opt.coalesce;
    kc.deadline = opt.deadline_ms > 0 ? util::MsToNs(opt.deadline_ms) : 0;
    kc.hedge_reads = opt.hedge;
    client::KvClient client(sim, cl.router(), kc);

    workload::YcsbConfig base;
    base.arrival_rate = opt.arrival_rate;
    base.duration = util::SecToNs(opt.duration);
    base.seed = opt.seed;
    base.theta = opt.theta;
    base.value_bytes = value_bytes;
    base.scan_limit_max = opt.scan_limit;
    base.slo = util::MsToNs(opt.deadline_ms > 0 ? opt.deadline_ms : 5.0);
    // One labelled series segment per phase: windowed metrics cut exactly
    // at the schedule's boundaries (no-op without --stats-series).
    base.on_phase_start = [&opt, &sim](size_t, const workload::YcsbPhase &p,
                                       util::TimeNs, util::TimeNs dur) {
        opt.obs.StartSeries(sim, "ycsb." + p.name, dur);
    };
    const workload::YcsbConfig cfg = workload::YcsbProfile(opt.profile, base);

    const workload::YcsbResult r =
        workload::RunYcsb(sim, client.Service(), keys, cfg);

    std::printf("ycsb-%s: %u nodes, R=%u, %.0f base arrivals/s, "
                "theta %.2f, value %u KiB, %zu phases\n",
                opt.profile.c_str(), opt.nodes, opt.replication,
                opt.arrival_rate, opt.theta,
                value_bytes / static_cast<uint32_t>(util::kKiB),
                cfg.phases.size());
    std::printf("offered %.0f ops/s, goodput %.0f ops/s "
                "(%llu issued, %llu completed)\n",
                r.offered_ops_per_sec, r.goodput_ops_per_sec,
                static_cast<unsigned long long>(r.issued),
                static_cast<unsigned long long>(r.completed));
    std::printf("outcomes: %llu reads, %llu updates, %llu inserts, "
                "%llu scans (%llu keys, %.1f MiB), %llu misses\n",
                static_cast<unsigned long long>(r.ok_reads),
                static_cast<unsigned long long>(r.ok_updates),
                static_cast<unsigned long long>(r.ok_inserts),
                static_cast<unsigned long long>(r.ok_scans),
                static_cast<unsigned long long>(r.scanned_keys),
                static_cast<double>(r.scanned_bytes) / (1 << 20),
                static_cast<unsigned long long>(r.misses));
    std::printf("shed: %llu overloaded, %llu deadline, %llu errors; "
                "SLO violations %llu; p50 %.3f ms, p99 %.3f ms, "
                "p99.9 %.3f ms\n",
                static_cast<unsigned long long>(r.shed_overloaded),
                static_cast<unsigned long long>(r.shed_deadline),
                static_cast<unsigned long long>(r.errors),
                static_cast<unsigned long long>(r.slo_violations),
                r.p50_ms, r.p99_ms, r.p999_ms);

    util::TablePrinter table("per-phase breakdown");
    table.SetHeader({"phase", "issued", "completed", "shed", "slo viol",
                     "p50 ms", "p99 ms", "p99.9 ms"});
    char buf[32];
    auto fmt = [&buf](double v) {
        std::snprintf(buf, sizeof buf, "%.3f", v);
        return std::string(buf);
    };
    for (const workload::YcsbPhaseResult &p : r.phases) {
        table.AddRow({p.name, std::to_string(p.issued),
                      std::to_string(p.completed),
                      std::to_string(p.shed_overloaded + p.shed_deadline),
                      std::to_string(p.slo_violations), fmt(p.p50_ms),
                      fmt(p.p99_ms), fmt(p.p999_ms)});
    }
    table.Print();

    // Same audit as overload: skew and storms may shed ops, but every
    // acked write must stay readable.
    uint64_t lost = 0, audited = 0;
    size_t next = 0;
    std::function<void()> audit_step = [&]() {
        if (next >= r.acked_writes.size()) return;
        const uint64_t key = r.acked_writes[next++];
        cl.router().Get(key, [&, key](const kv::GetResult &res) {
            ++audited;
            if (!res.ok || !res.found) {
                ++lost;
                if (lost <= 10) {
                    std::fprintf(stderr, "lost acked key %llu\n",
                                 static_cast<unsigned long long>(key));
                }
            }
            audit_step();
        });
    };
    for (uint32_t s = 0; s < 8; ++s) audit_step();
    sim.Run();
    std::printf("consistency audit: %llu acked writes, %llu lost\n",
                static_cast<unsigned long long>(audited),
                static_cast<unsigned long long>(lost));

    AddCommonMeta(opt);
    opt.obs.AddMeta("profile", opt.profile);
    opt.obs.AddMeta("theta", std::to_string(opt.theta));
    opt.obs.AddMeta("nodes", std::to_string(opt.nodes));
    opt.obs.AddMeta("replication", std::to_string(opt.replication));
    opt.obs.AddMeta("arrival_rate", std::to_string(opt.arrival_rate));
    opt.obs.AddDerived("result.issued", static_cast<double>(r.issued));
    opt.obs.AddDerived("result.completed",
                       static_cast<double>(r.completed));
    opt.obs.AddDerived("result.offered_ops_per_sec", r.offered_ops_per_sec);
    opt.obs.AddDerived("result.goodput_ops_per_sec", r.goodput_ops_per_sec);
    opt.obs.AddDerived("result.p50_ms", r.p50_ms);
    opt.obs.AddDerived("result.p99_ms", r.p99_ms);
    opt.obs.AddDerived("result.p999_ms", r.p999_ms);
    opt.obs.AddDerived("result.ok_scans", static_cast<double>(r.ok_scans));
    opt.obs.AddDerived("result.scanned_keys",
                       static_cast<double>(r.scanned_keys));
    opt.obs.AddDerived("result.scanned_bytes",
                       static_cast<double>(r.scanned_bytes));
    opt.obs.AddDerived("result.misses", static_cast<double>(r.misses));
    opt.obs.AddDerived("result.shed_overloaded",
                       static_cast<double>(r.shed_overloaded));
    opt.obs.AddDerived("result.shed_deadline",
                       static_cast<double>(r.shed_deadline));
    opt.obs.AddDerived("result.errors", static_cast<double>(r.errors));
    opt.obs.AddDerived("result.slo_violations",
                       static_cast<double>(r.slo_violations));
    opt.obs.AddDerived("result.lost_acked_writes",
                       static_cast<double>(lost));
    for (const workload::YcsbPhaseResult &p : r.phases) {
        const std::string pre = "result.phase." + p.name + ".";
        opt.obs.AddDerived(pre + "issued", static_cast<double>(p.issued));
        opt.obs.AddDerived(pre + "completed",
                           static_cast<double>(p.completed));
        opt.obs.AddDerived(pre + "p99_ms", p.p99_ms);
        opt.obs.AddDerived(pre + "slo_violations",
                           static_cast<double>(p.slo_violations));
    }
    if (const int rc = opt.obs.Export(); rc != 0) return rc;
    return lost == 0 ? 0 : 1;
}

int
RunKv(Options &opt)
{
    using bench::DeviceKind;
    const DeviceKind kind = opt.device == "huawei" ? DeviceKind::kHuaweiGen3
                            : opt.device == "intel" ? DeviceKind::kIntel320
                                                    : DeviceKind::kBaiduSdf;
    bench::KvTestbed bed(kind, opt.slices, opt.slices, opt.scale, {},
                         opt.obs.hub());
    workload::KvRunConfig run;
    run.warmup = util::SecToNs(opt.warmup);
    run.duration = util::SecToNs(opt.duration);
    run.seed = opt.seed;

    if (opt.workload == "kvread") {
        const auto keys = bed.Preload(200 * util::kMiB,
                                      opt.value_kib * util::kKiB);
        const auto r = workload::RunBatchedRandomReads(
            bed.sim(), bed.net(), bed.SlicePtrs(), keys, opt.batch, run);
        std::printf("%s kvread %u slices batch %u value %uKiB: %.1f MB/s "
                    "(%llu batches)\n",
                    bench::DeviceName(kind), opt.slices, opt.batch,
                    opt.value_kib, r.client_mbps,
                    static_cast<unsigned long long>(r.requests));
    } else if (opt.workload == "scan") {
        bed.Preload(200 * util::kMiB, opt.value_kib * util::kKiB);
        const auto r =
            workload::RunSequentialScan(bed.sim(), bed.SlicePtrs(), 6, run);
        std::printf("%s scan %u slices x6 threads: %.1f MB/s\n",
                    bench::DeviceName(kind), opt.slices, r.client_mbps);
    } else if (opt.workload == "kvwrite") {
        const auto r = workload::RunKvWrites(bed.sim(), bed.net(),
                                             bed.SlicePtrs(), 100 * util::kKiB,
                                             util::kMiB, run);
        std::printf("%s kvwrite %u slices: device write %.1f MB/s, "
                    "compaction read %.1f MB/s (%llu puts)\n",
                    bench::DeviceName(kind), opt.slices, r.device_write_mbps,
                    r.device_read_mbps,
                    static_cast<unsigned long long>(r.requests));
    } else {
        std::fprintf(stderr, "unknown kv workload %s\n",
                     opt.workload.c_str());
        return 1;
    }
    AddCommonMeta(opt);
    opt.obs.AddMeta("slices", std::to_string(opt.slices));
    opt.obs.AddMeta("value_kib", std::to_string(opt.value_kib));
    return opt.obs.Export();
}

}  // namespace
}  // namespace sdf

int
main(int argc, char **argv)
{
    sdf::Options opt;
    if (!sdf::ParseArgs(argc, argv, opt)) return argc > 1 ? 1 : 0;

    if (opt.workload == "faults") return sdf::RunFaults(opt);
    if (opt.workload == "cluster") return sdf::RunCluster(opt);
    if (opt.workload == "overload") return sdf::RunOverload(opt);
    if (opt.workload == "ycsb") return sdf::RunYcsb(opt);
    if (opt.workload.rfind("kv", 0) == 0 || opt.workload == "scan") {
        return sdf::RunKv(opt);
    }
    if (opt.device == "sdf") return sdf::RunRawSdf(opt);
    return sdf::RunRawConventional(opt);
}
