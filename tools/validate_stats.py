#!/usr/bin/env python3
"""Validate sdfsim/bench observability exports.

Checks that a --stats-json document is well-formed and that its core
invariant holds: for every operation class, the per-stage latency means
sum to the end-to-end mean (within a tolerance; the cut-point span
construction makes it exact up to float rounding). This covers the
cluster critical path too: client.path.get / client.path.put segments
(client_queue, rpc_wire, admission, server_handle, storage, hedge_wait)
must tile the client-observed end-to-end latency across RPC hops exactly
like the device stages tile a device request. Optionally validates a
--trace export (parses as JSON, has traceEvents and a dropped_events
count, carries the expected per-channel tracks) and a --series export
(windows are monotone, contiguous, and no wider than the interval).

Usage:
    validate_stats.py STATS.json [--trace=TRACE.json] [--channels=N]
                      [--series=SERIES.json] [--require-op=OP]...
                      [--check-phases] [--tolerance=0.01]

--require-op fails unless stages.OP is present with count > 0 (used by
check.sh to prove the cluster path attribution actually ran).

--check-phases validates a phased workload export (sdfsim
--workload=ycsb): derived must carry at least one
result.phase.<name>.issued section, and the per-phase issued/completed/
slo_violations must sum exactly to the run-level result.* totals —
attribution by issue time makes the phase boundary accounting exact, so
any mismatch is a real bug, not rounding.

Exit status 0 when every check passes; 1 with a message per failure.
"""

import json
import re
import sys

REQUIRED_TOP_KEYS = ("meta", "derived", "counters", "gauges", "histograms",
                     "stages")
REQUIRED_STAGE_KEYS = ("count", "end_to_end_ns_mean", "end_to_end_ns_p50",
                       "end_to_end_ns_p99", "end_to_end_ns_max",
                       "stage_ns_mean")


def fail(msg):
    print("validate_stats: FAIL: %s" % msg)
    return 1


def check_stats(path, tolerance, require_ops=()):
    rc = 0
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        return fail("%s: %s" % (path, e))

    for op in require_ops:
        if op not in doc.get("stages", {}):
            rc |= fail("%s: required stage op %r is missing" % (path, op))

    for key in REQUIRED_TOP_KEYS:
        if key not in doc:
            rc |= fail("%s: missing top-level key %r" % (path, key))
    if rc:
        return rc

    if not doc["stages"]:
        print("validate_stats: note: %s has no stage records" % path)
    for op, s in sorted(doc["stages"].items()):
        for key in REQUIRED_STAGE_KEYS:
            if key not in s:
                rc |= fail("%s: stages.%s missing %r" % (path, op, key))
        if rc:
            continue
        if s["count"] <= 0:
            rc |= fail("%s: stages.%s has count %s" % (path, op, s["count"]))
            continue
        stage_sum = sum(s["stage_ns_mean"].values())
        e2e = s["end_to_end_ns_mean"]
        if e2e <= 0:
            rc |= fail("%s: stages.%s end_to_end_ns_mean is %s"
                       % (path, op, e2e))
            continue
        rel = abs(stage_sum - e2e) / e2e
        if rel > tolerance:
            rc |= fail("%s: stages.%s stage means sum to %.1f but "
                       "end-to-end mean is %.1f (rel err %.3g > %.3g)"
                       % (path, op, stage_sum, e2e, rel, tolerance))
        else:
            print("validate_stats: %s: stages.%s ok (count %d, "
                  "sum/e2e rel err %.3g)" % (path, op, s["count"], rel))

    for name, h in sorted(doc["histograms"].items()):
        for key in ("count", "min", "max", "mean", "p50", "p99", "p999"):
            if key not in h:
                rc |= fail("%s: histograms.%s missing %r" % (path, name, key))
    return rc


def check_phases(path):
    """Exact per-phase accounting in a phased workload's derived keys."""
    rc = 0
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        return fail("%s: %s" % (path, e))

    derived = doc.get("derived", {})
    phases = {}
    for key, value in derived.items():
        m = re.fullmatch(r"result\.phase\.([^.]+)\.(\w+)", key)
        if m:
            phases.setdefault(m.group(1), {})[m.group(2)] = value
    if not phases:
        return fail("%s: no result.phase.* sections in derived" % path)

    for name, section in sorted(phases.items()):
        for want in ("issued", "completed", "p99_ms", "slo_violations"):
            if want not in section:
                rc |= fail("%s: phase %r missing derived key %r"
                           % (path, name, want))
    if rc:
        return rc

    for total_key in ("issued", "completed", "slo_violations"):
        total = derived.get("result.%s" % total_key)
        if total is None:
            rc |= fail("%s: missing derived result.%s" % (path, total_key))
            continue
        phase_sum = sum(s[total_key] for s in phases.values())
        if phase_sum != total:
            rc |= fail("%s: per-phase %s sums to %s but result.%s is %s"
                       % (path, total_key, phase_sum, total_key, total))
    if rc == 0:
        print("validate_stats: %s: phases ok (%d phases, counts sum "
              "exactly to totals)" % (path, len(phases)))
    return rc


def check_trace(path, channels):
    rc = 0
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        return fail("%s: %s" % (path, e))

    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        return fail("%s: no traceEvents" % path)
    # A capped sink must report how much it left out, in-band.
    if not isinstance(doc.get("dropped_events"), int):
        rc |= fail("%s: missing integer dropped_events field" % path)

    thread_names = set()
    for ev in events:
        if ev.get("ph") == "M" and ev.get("name") == "thread_name":
            thread_names.add(ev["args"]["name"])
        elif ev.get("ph") == "X":
            for key in ("name", "ts", "dur", "pid", "tid"):
                if key not in ev:
                    return fail("%s: X event missing %r: %r"
                                % (path, key, ev))
    bus_tracks = [n for n in thread_names
                  if re.fullmatch(r"ch\d+\.bus", n)]
    if channels > 0 and len(bus_tracks) < channels:
        rc |= fail("%s: expected >= %d per-channel bus tracks, found %d"
                   % (path, channels, len(bus_tracks)))
    else:
        print("validate_stats: %s: ok (%d events, %d tracks, %d channel "
              "bus tracks)" % (path, len(events), len(thread_names),
                               len(bus_tracks)))
    return rc


def check_series(path):
    rc = 0
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        return fail("%s: %s" % (path, e))

    segments = doc.get("series")
    if not isinstance(segments, list) or not segments:
        return fail("%s: no series segments" % path)
    total_windows = 0
    for seg in segments:
        label = seg.get("label", "?")
        interval = seg.get("interval_ns", 0)
        if interval <= 0:
            rc |= fail("%s: segment %r has interval_ns %s"
                       % (path, label, interval))
            continue
        windows = seg.get("windows", [])
        prev_end = None
        for i, w in enumerate(windows):
            start, end = w.get("start_ns"), w.get("end_ns")
            if start is None or end is None or start >= end:
                rc |= fail("%s: %s window %d has bad bounds [%s, %s)"
                           % (path, label, i, start, end))
                continue
            # Windows tile the segment: monotone, contiguous, and never
            # wider than the tick interval (the last one may be clipped).
            if prev_end is not None and start != prev_end:
                rc |= fail("%s: %s window %d starts at %d, previous "
                           "ended at %d (gap/overlap)"
                           % (path, label, i, start, prev_end))
            if end - start > interval:
                rc |= fail("%s: %s window %d spans %d ns > interval %d"
                           % (path, label, i, end - start, interval))
            prev_end = end
            for name, v in w.get("counters", {}).items():
                if not isinstance(v, int) or v < 0:
                    rc |= fail("%s: %s window %d counter %s = %r"
                               % (path, label, i, name, v))
        total_windows += len(windows)
    if rc == 0:
        print("validate_stats: %s: ok (%d segments, %d windows)"
              % (path, len(segments), total_windows))
    return rc


def main(argv):
    stats_path = None
    trace_path = None
    series_path = None
    require_ops = []
    channels = 0
    tolerance = 0.01
    phases = False
    for arg in argv[1:]:
        if arg.startswith("--trace="):
            trace_path = arg.split("=", 1)[1]
        elif arg.startswith("--series="):
            series_path = arg.split("=", 1)[1]
        elif arg.startswith("--require-op="):
            require_ops.append(arg.split("=", 1)[1])
        elif arg.startswith("--channels="):
            channels = int(arg.split("=", 1)[1])
        elif arg.startswith("--tolerance="):
            tolerance = float(arg.split("=", 1)[1])
        elif arg == "--check-phases":
            phases = True
        elif arg.startswith("--"):
            print(__doc__)
            return 2
        else:
            stats_path = arg
    if stats_path is None:
        print(__doc__)
        return 2

    rc = check_stats(stats_path, tolerance, require_ops)
    if phases:
        rc |= check_phases(stats_path)
    if trace_path is not None:
        rc |= check_trace(trace_path, channels)
    if series_path is not None:
        rc |= check_series(series_path)
    if rc == 0:
        print("validate_stats: PASS")
    return rc


if __name__ == "__main__":
    sys.exit(main(sys.argv))
