#!/usr/bin/env python3
"""Validate sdfsim/bench observability exports.

Checks that a --stats-json document is well-formed and that its core
invariant holds: for every operation class, the per-stage latency means
sum to the end-to-end mean (within a tolerance; the cut-point span
construction makes it exact up to float rounding). Optionally validates a
--trace export: parses as JSON, has traceEvents, and carries at least the
expected number of per-channel tracks.

Usage:
    validate_stats.py STATS.json [--trace=TRACE.json] [--channels=N]
                      [--tolerance=0.01]

Exit status 0 when every check passes; 1 with a message per failure.
"""

import json
import re
import sys

REQUIRED_TOP_KEYS = ("meta", "derived", "counters", "gauges", "histograms",
                     "stages")
REQUIRED_STAGE_KEYS = ("count", "end_to_end_ns_mean", "end_to_end_ns_p50",
                       "end_to_end_ns_p99", "end_to_end_ns_max",
                       "stage_ns_mean")


def fail(msg):
    print("validate_stats: FAIL: %s" % msg)
    return 1


def check_stats(path, tolerance):
    rc = 0
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        return fail("%s: %s" % (path, e))

    for key in REQUIRED_TOP_KEYS:
        if key not in doc:
            rc |= fail("%s: missing top-level key %r" % (path, key))
    if rc:
        return rc

    if not doc["stages"]:
        print("validate_stats: note: %s has no stage records" % path)
    for op, s in sorted(doc["stages"].items()):
        for key in REQUIRED_STAGE_KEYS:
            if key not in s:
                rc |= fail("%s: stages.%s missing %r" % (path, op, key))
        if rc:
            continue
        if s["count"] <= 0:
            rc |= fail("%s: stages.%s has count %s" % (path, op, s["count"]))
            continue
        stage_sum = sum(s["stage_ns_mean"].values())
        e2e = s["end_to_end_ns_mean"]
        if e2e <= 0:
            rc |= fail("%s: stages.%s end_to_end_ns_mean is %s"
                       % (path, op, e2e))
            continue
        rel = abs(stage_sum - e2e) / e2e
        if rel > tolerance:
            rc |= fail("%s: stages.%s stage means sum to %.1f but "
                       "end-to-end mean is %.1f (rel err %.3g > %.3g)"
                       % (path, op, stage_sum, e2e, rel, tolerance))
        else:
            print("validate_stats: %s: stages.%s ok (count %d, "
                  "sum/e2e rel err %.3g)" % (path, op, s["count"], rel))

    for name, h in sorted(doc["histograms"].items()):
        for key in ("count", "min", "max", "mean", "p50", "p99", "p999"):
            if key not in h:
                rc |= fail("%s: histograms.%s missing %r" % (path, name, key))
    return rc


def check_trace(path, channels):
    rc = 0
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        return fail("%s: %s" % (path, e))

    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        return fail("%s: no traceEvents" % path)

    thread_names = set()
    for ev in events:
        if ev.get("ph") == "M" and ev.get("name") == "thread_name":
            thread_names.add(ev["args"]["name"])
        elif ev.get("ph") == "X":
            for key in ("name", "ts", "dur", "pid", "tid"):
                if key not in ev:
                    return fail("%s: X event missing %r: %r"
                                % (path, key, ev))
    bus_tracks = [n for n in thread_names
                  if re.fullmatch(r"ch\d+\.bus", n)]
    if channels > 0 and len(bus_tracks) < channels:
        rc |= fail("%s: expected >= %d per-channel bus tracks, found %d"
                   % (path, channels, len(bus_tracks)))
    else:
        print("validate_stats: %s: ok (%d events, %d tracks, %d channel "
              "bus tracks)" % (path, len(events), len(thread_names),
                               len(bus_tracks)))
    return rc


def main(argv):
    stats_path = None
    trace_path = None
    channels = 0
    tolerance = 0.01
    for arg in argv[1:]:
        if arg.startswith("--trace="):
            trace_path = arg.split("=", 1)[1]
        elif arg.startswith("--channels="):
            channels = int(arg.split("=", 1)[1])
        elif arg.startswith("--tolerance="):
            tolerance = float(arg.split("=", 1)[1])
        elif arg.startswith("--"):
            print(__doc__)
            return 2
        else:
            stats_path = arg
    if stats_path is None:
        print(__doc__)
        return 2

    rc = check_stats(stats_path, tolerance)
    if trace_path is not None:
        rc |= check_trace(trace_path, channels)
    if rc == 0:
        print("validate_stats: PASS")
    return rc


if __name__ == "__main__":
    sys.exit(main(sys.argv))
